//! Structured span tracing with NDJSON output.
//!
//! A [`Tracer`] hands out [`Span`] guards: a span opens with a name, ends
//! when the guard drops, and is written as one NDJSON line carrying its
//! id, parent id, start/end nanoseconds, and `key=value` attributes.
//!
//! # Cost model
//!
//! - **Disabled** (the default, and the only mode unless the daemon is
//!   started with `--trace-dir`): [`Tracer::span`] is one branch on an
//!   `Option` and returns an empty guard — no allocation, no clock read,
//!   no synchronization. The bench gate holds the whole pipeline to <3%
//!   overhead in this mode, and in practice it is in the noise.
//! - **Enabled**: completed spans are rendered into a **per-thread
//!   buffer** (no lock on the span path) which is appended to the shared
//!   sink only when it exceeds `FLUSH_BYTES`, when a *root* span ends
//!   (one lock per job, not per span), or when the thread exits.
//!
//! # Parenting
//!
//! Within a thread, spans nest automatically: each live span sits on a
//! thread-local stack and new spans adopt the top as their parent. Work
//! that hops threads (the rayon-shim `par_iter` inside a job) passes the
//! parent id explicitly via [`Tracer::span_child`]; spans whose parent
//! cannot be known (e.g. deep library calls on a foreign pool thread)
//! simply record parent 0 and are reported as unattributed by
//! `trace-report` rather than guessed.
//!
//! # Determinism
//!
//! Timestamps come from a [`Clock`]; tests inject a
//! [`VirtualClock`](crate::clock::VirtualClock) so span boundaries are
//! exact. Tracing never changes what the pipeline computes — the
//! byte-identity test in `tests/observability.rs` pins diagnosis output
//! equal with tracing on and off.

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::Histogram;
use crate::report::JOB_SPAN;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Per-thread buffer size that forces a flush to the shared sink.
const FLUSH_BYTES: usize = 32 * 1024;

/// Completed `job` roots a percentile tail rule needs before it starts
/// flushing — below this the quantile estimate is noise, so nothing is
/// kept (the conservative direction for an overhead-bounded feature).
const TAIL_WARMUP_JOBS: u64 = 32;

fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Span records and their NDJSON form
// ---------------------------------------------------------------------------

/// One completed span, as written to (and read back from) the NDJSON sink.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// Unique id within the tracer (starts at 1; 0 is "no span").
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Span name (e.g. `job`, `stage.retrieve`, `llm.call`).
    pub name: String,
    /// Start, in the tracer clock's nanoseconds.
    pub start_ns: u64,
    /// End, in the tracer clock's nanoseconds.
    pub end_ns: u64,
    /// `key=value` attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds (0 if the clock went backwards).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// First attribute with the given key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Render as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(96 + self.name.len());
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"attrs\":{{",
            self.id,
            self.parent,
            escape_json(&self.name),
            self.start_ns,
            self.end_ns,
        );
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
        out
    }

    /// Parse one NDJSON line back into a record. Accepts exactly the
    /// shape [`SpanRecord::to_ndjson`] writes (keys in any order).
    pub fn parse(line: &str) -> Result<SpanRecord, String> {
        let mut p = MiniParser::new(line);
        let mut record = SpanRecord {
            id: 0,
            parent: 0,
            name: String::new(),
            start_ns: 0,
            end_ns: 0,
            attrs: Vec::new(),
        };
        p.expect('{')?;
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            match key.as_str() {
                "id" => record.id = p.number()?,
                "parent" => record.parent = p.number()?,
                "name" => record.name = p.string()?,
                "start_ns" => record.start_ns = p.number()?,
                "end_ns" => record.end_ns = p.number()?,
                "attrs" => {
                    p.expect('{')?;
                    loop {
                        p.skip_ws();
                        if p.eat('}') {
                            break;
                        }
                        let k = p.string()?;
                        p.skip_ws();
                        p.expect(':')?;
                        p.skip_ws();
                        let v = p.string()?;
                        record.attrs.push((k, v));
                        p.skip_ws();
                        let _ = p.eat(',');
                    }
                }
                other => return Err(format!("unknown span field {other:?}")),
            }
            p.skip_ws();
            let _ = p.eat(',');
        }
        if record.id == 0 {
            return Err("span record without an id".to_string());
        }
        Ok(record)
    }
}

/// Parse a whole NDJSON buffer (blank lines skipped) into records.
pub fn parse_spans(text: &str) -> Result<Vec<SpanRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(SpanRecord::parse)
        .collect()
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON cursor for the span record shape (objects of numbers,
/// strings, and one level of string→string nesting).
struct MiniParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MiniParser<'a> {
    fn new(s: &'a str) -> Self {
        MiniParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| e.to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        if !self.eat('"') {
            return Err(format!("expected a string at byte {}", self.pos));
        }
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("dangling escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let char_start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = char_start + width;
                    let chunk = self.bytes.get(char_start..end).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = end;
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xf0 => 4,
        b if b >= 0xe0 => 3,
        _ => 2,
    }
}

// ---------------------------------------------------------------------------
// Sinks and per-thread buffering
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum SinkKind {
    /// Append to an NDJSON file (buffered; flushed on root spans and at
    /// thread/tracer teardown).
    File {
        path: PathBuf,
        writer: Mutex<std::io::BufWriter<std::fs::File>>,
    },
    /// Accumulate in memory (tests and in-process inspection).
    Memory(Mutex<String>),
}

#[derive(Debug)]
struct SinkState {
    kind: SinkKind,
}

impl SinkState {
    fn append(&self, chunk: &str) {
        match &self.kind {
            SinkKind::File { writer, .. } => {
                let mut w = lock(writer);
                // Trace loss is never worth failing the pipeline over.
                let _ = w.write_all(chunk.as_bytes());
                let _ = w.flush();
            }
            SinkKind::Memory(buf) => lock(buf).push_str(chunk),
        }
    }
}

struct ThreadBuf {
    sink: Arc<SinkState>,
    buf: String,
}

/// All of this thread's tracer buffers; flushed when the thread exits.
#[derive(Default)]
struct ThreadBufs {
    bufs: Vec<ThreadBuf>,
}

impl Drop for ThreadBufs {
    fn drop(&mut self) {
        for tb in &mut self.bufs {
            if !tb.buf.is_empty() {
                tb.sink.append(&tb.buf);
            }
        }
    }
}

thread_local! {
    /// Stack of live spans on this thread: (tracer token, span id, root
    /// span id). The root is carried so tail sampling can attribute fine
    /// spans to their job without touching any shared state on the hot
    /// path (it is 0 for non-tail tracers, which never read it).
    static SPAN_STACK: RefCell<Vec<(usize, u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread rendered-span buffers, one per sink this thread has
    /// written to (almost always exactly one).
    static BUFFERS: RefCell<ThreadBufs> = RefCell::new(ThreadBufs::default());
    /// Tail-sampling fine spans awaiting their root's verdict, as
    /// `(tracer token, root span id, record)`. A fine span whose root is
    /// live on *this* thread's stack buffers here — a plain push, no
    /// lock — and is drained when that root drops (necessarily on this
    /// thread, after all of its children). Only cross-thread fine spans
    /// fall back to the tracer's shared `pending` map.
    static TAIL_LOCAL: RefCell<Vec<(usize, u64, SpanRecord)>> = const { RefCell::new(Vec::new()) };
}

// ---------------------------------------------------------------------------
// Tail-based sampling
// ---------------------------------------------------------------------------

/// When a `tail:`-sampled job keeps its fine-detail spans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TailThreshold {
    /// Keep jobs whose root span lasted at least this many milliseconds.
    Millis(u64),
    /// Keep jobs at or above this quantile of job durations seen so far
    /// (`p99` → 0.99). Needs `TAIL_WARMUP_JOBS` completed jobs before
    /// anything is kept.
    Percentile(f64),
}

/// The argument of `--trace-sample tail:<ms|pN>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailRule {
    /// When a finished job's fine spans are worth keeping.
    pub threshold: TailThreshold,
}

impl TailRule {
    /// Parse the part after `tail:` — `250ms` or a percentile like
    /// `p99`. One or two digits read as a percent (`p5`, `p50`, `p99`);
    /// longer forms are the colloquial nines family (`p999` = 99.9%,
    /// `p9999` = 99.99%).
    pub fn parse(s: &str) -> Result<TailRule, String> {
        if let Some(ms) = s.strip_suffix("ms") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad tail threshold {s:?}: want <integer>ms or pN"))?;
            return Ok(TailRule {
                threshold: TailThreshold::Millis(ms),
            });
        }
        if let Some(digits) = s.strip_prefix('p') {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) && digits.len() <= 6
            {
                let n: u64 = digits.parse().expect("all digits");
                // One or two digits: a percent. Longer: the nines
                // family only. Either way the fraction is n / 10^k in a
                // single division (no compounding float error).
                let ok_family = digits.len() <= 2 || digits.starts_with("99");
                let p = n as f64 / 10f64.powi(digits.len().max(2) as i32);
                if ok_family && (0.01..1.0).contains(&p) {
                    return Ok(TailRule {
                        threshold: TailThreshold::Percentile(p),
                    });
                }
            }
        }
        Err(format!(
            "bad tail threshold {s:?}: want <integer>ms (e.g. 250ms) or a percentile strictly \
             between p1 and p100 (e.g. p99, p999)"
        ))
    }
}

impl std::fmt::Display for TailRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.threshold {
            TailThreshold::Millis(ms) => write!(f, "tail:{ms}ms"),
            TailThreshold::Percentile(p) => {
                // 0.99 -> p99, 0.999 -> p999, 0.05 -> p5.
                let percent = p * 100.0;
                if (percent - percent.round()).abs() < 1e-9 {
                    write!(f, "tail:p{}", percent.round() as u64)
                } else {
                    write!(f, "tail:p{}", format!("{percent}").replace('.', ""))
                }
            }
        }
    }
}

/// Shared state of a tail-sampling tracer: which live *coarse* span
/// belongs to which root, the undecided fine spans per root, and the
/// job-duration distribution that percentile rules threshold against.
///
/// The hot path (one fine span per LLM call / fragment / scan, hundreds
/// per job) resolves its root from the thread-local span stack and
/// buffers its unrendered record in the thread-local `TAIL_LOCAL` — no
/// shared state is touched at all. Rendering to NDJSON happens only for
/// kept jobs. Coarse spans (a handful per job) register in `roots` so
/// cross-thread children with an explicit parent id can find their
/// root; only those cross-thread fine spans use the shared `pending`
/// map.
#[derive(Debug)]
struct TailState {
    rule: TailRule,
    /// Live *coarse* span id → its root span id. Entries live exactly as
    /// long as the span guard; cross-thread children resolve their root
    /// here at open time (the parent guard is necessarily still alive
    /// then). Fine spans are never registered: in practice they parent
    /// only same-thread children, which resolve via the span stack, and
    /// an unresolvable fine span is written unconditionally, never lost.
    roots: Mutex<HashMap<u64, u64>>,
    /// Root span id → unrendered fine-span records awaiting the
    /// verdict. Only *cross-thread* fine spans land here; same-thread
    /// ones (the hot path) buffer in the thread-local `TAIL_LOCAL`.
    pending: Mutex<HashMap<u64, Vec<SpanRecord>>>,
    /// Durations of completed `job` roots.
    job_ns: Histogram,
}

impl TailState {
    fn new(rule: TailRule) -> TailState {
        TailState {
            rule,
            roots: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            job_ns: Histogram::default(),
        }
    }

    /// Current keep-threshold in nanoseconds (`u64::MAX` = keep nothing,
    /// used while a percentile rule warms up).
    fn threshold_ns(&self) -> u64 {
        match self.rule.threshold {
            TailThreshold::Millis(ms) => ms.saturating_mul(1_000_000),
            TailThreshold::Percentile(p) => {
                if self.job_ns.count() < TAIL_WARMUP_JOBS {
                    u64::MAX
                } else {
                    self.job_ns.quantile(p)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

struct TracerInner {
    clock: Box<dyn Clock>,
    sink: Arc<SinkState>,
    next_id: AtomicU64,
    /// Record fine-grained spans (`span_fine` and friends) too. Off by
    /// default: the coarse stage tiling costs a handful of spans per job,
    /// while per-call / per-fragment detail costs hundreds.
    fine: bool,
    /// Tail-based sampling: buffer fine spans per job and keep them only
    /// for slow or errored jobs. Implies `fine`.
    tail: Option<TailState>,
}

/// Hands out spans. Cheap to share (`Arc` inside); a disabled tracer is a
/// `None` and costs one branch per call.
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing (the default mode).
    pub const fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Trace to `<dir>/spans-<pid>.ndjson` with a monotonic clock. The
    /// directory is created if missing; the file is appended to, so
    /// restarts of the same process tree accumulate in one directory.
    pub fn to_dir(dir: impl AsRef<Path>) -> std::io::Result<Tracer> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("spans-{}.ndjson", std::process::id()));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Self::build(
            Box::new(MonotonicClock::new()),
            SinkKind::File {
                path,
                writer: Mutex::new(std::io::BufWriter::new(file)),
            },
        ))
    }

    /// Trace into an in-memory buffer with a monotonic clock.
    pub fn memory() -> Tracer {
        Self::with_clock_memory(Box::new(MonotonicClock::new()))
    }

    /// Trace into an in-memory buffer with an explicit clock (tests pass
    /// a [`VirtualClock`](crate::clock::VirtualClock) here).
    pub fn with_clock_memory(clock: Box<dyn Clock>) -> Tracer {
        Self::build(clock, SinkKind::Memory(Mutex::new(String::new())))
    }

    fn build(clock: Box<dyn Clock>, kind: SinkKind) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                sink: Arc::new(SinkState { kind }),
                next_id: AtomicU64::new(1),
                fine: false,
                tail: None,
            })),
        }
    }

    /// Turn on fine-grained detail: [`Tracer::span_fine`] /
    /// [`Tracer::span_child_fine`] record real spans instead of no-ops.
    /// Builder-style — call before the tracer is shared or installed.
    pub fn with_fine_detail(mut self) -> Tracer {
        if let Some(inner) = self.inner.as_mut().and_then(Arc::get_mut) {
            inner.fine = true;
        }
        self
    }

    /// Turn on tail-based sampling: fine spans are recorded (implies
    /// [`Tracer::with_fine_detail`]) but buffered per job, and written
    /// out only when the job's root span is slow (per `rule`) or carries
    /// an `error` attribute. Coarse spans are always written. Non-`job`
    /// roots keep their fine spans unconditionally — the rule speaks
    /// about jobs. Builder-style — call before the tracer is shared.
    pub fn with_tail_sampling(mut self, rule: TailRule) -> Tracer {
        if let Some(inner) = self.inner.as_mut().and_then(Arc::get_mut) {
            inner.fine = true;
            inner.tail = Some(TailState::new(rule));
        }
        self
    }

    /// The tail-sampling rule, if sampling is on.
    pub fn tail_sampling(&self) -> Option<TailRule> {
        self.inner
            .as_ref()
            .and_then(|i| i.tail.as_ref())
            .map(|t| t.rule)
    }

    /// Whether fine-grained spans are being recorded.
    pub fn fine_detail(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.fine)
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time on the tracer's clock (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// The file this tracer appends to, if it has one.
    pub fn trace_path(&self) -> Option<&Path> {
        match &self.inner.as_ref()?.sink.kind {
            SinkKind::File { path, .. } => Some(path),
            SinkKind::Memory(_) => None,
        }
    }

    /// Open a span whose parent is the innermost live span on this
    /// thread (0 if none).
    pub fn span(&self, name: &str) -> Span {
        self.span_stacked(name, false)
    }

    /// Fine-detail variant of [`Tracer::span`]: records only when
    /// [`Tracer::fine_detail`] is on. Use for high-volume spans (one per
    /// LLM call, per fragment, per index scan) whose cost would dominate
    /// a default trace.
    pub fn span_fine(&self, name: &str) -> Span {
        if self.fine_detail() {
            self.span_stacked(name, true)
        } else {
            Span { state: None }
        }
    }

    fn span_stacked(&self, name: &str, fine: bool) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        let token = Arc::as_ptr(inner) as usize;
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _, _)| *t == token)
                .map_or(0, |(_, id, _)| *id)
        });
        self.open(inner, name, inner.clock.now_ns(), parent, fine)
    }

    /// Fine-detail variant of [`Tracer::span_child`].
    pub fn span_child_fine(&self, name: &str, parent: u64) -> Span {
        if self.fine_detail() {
            let Some(inner) = &self.inner else {
                return Span { state: None };
            };
            self.open(inner, name, inner.clock.now_ns(), parent, true)
        } else {
            Span { state: None }
        }
    }

    /// Open a span with an explicit parent id — the cross-thread form
    /// (pass the enclosing span's [`Span::id`] into the worker closure).
    pub fn span_child(&self, name: &str, parent: u64) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        self.open(inner, name, inner.clock.now_ns(), parent, false)
    }

    /// Open a span with an explicit start time and parent — for phases
    /// whose beginning was observed before the span could be created
    /// (e.g. queue wait: enqueue happens on the submitter's thread, the
    /// span is recorded by the worker at dequeue).
    pub fn span_at(&self, name: &str, start_ns: u64, parent: u64) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        self.open(inner, name, start_ns, parent, false)
    }

    fn open(
        &self,
        inner: &Arc<TracerInner>,
        name: &str,
        start_ns: u64,
        parent: u64,
        fine: bool,
    ) -> Span {
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let token = Arc::as_ptr(inner) as usize;
        let mut root = 0;
        if let Some(tail) = &inner.tail {
            // Resolve this span's root while the parent guard is still
            // alive. Same-thread parents (the overwhelmingly common case,
            // and every fine-span open) resolve from the thread-local
            // stack; only cross-thread children with an explicit parent
            // id fall back to the shared map of live coarse spans.
            root = if parent == 0 {
                id
            } else {
                SPAN_STACK
                    .with(|s| {
                        s.borrow()
                            .iter()
                            .rev()
                            .find(|(t, pid, _)| *t == token && *pid == parent)
                            .map(|(_, _, r)| *r)
                    })
                    .or_else(|| lock(&tail.roots).get(&parent).copied())
                    .unwrap_or(0)
            };
            if !fine {
                lock(&tail.roots).insert(id, root);
            }
        }
        SPAN_STACK.with(|s| s.borrow_mut().push((token, id, root)));
        Span {
            state: Some(SpanState {
                tracer: Arc::clone(inner),
                record: SpanRecord {
                    id,
                    parent,
                    name: name.to_string(),
                    start_ns,
                    end_ns: 0,
                    attrs: Vec::new(),
                },
                fine,
                root,
            }),
        }
    }

    /// Flush this thread's buffered spans to the sink (and the sink to
    /// disk, for file sinks). Spans buffered on *other* live threads
    /// flush when those threads exit or fill their buffers.
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        flush_thread_buffer(&inner.sink);
    }

    /// Take everything recorded so far (memory sinks only), parsed back
    /// into records. Flushes the calling thread's buffer first.
    pub fn drain_memory(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        flush_thread_buffer(&inner.sink);
        let SinkKind::Memory(buf) = &inner.sink.kind else {
            return Vec::new();
        };
        let text = std::mem::take(&mut *lock(buf));
        parse_spans(&text).expect("tracer wrote valid NDJSON")
    }
}

fn flush_thread_buffer(sink: &Arc<SinkState>) {
    BUFFERS.with(|b| {
        let mut bufs = b.borrow_mut();
        for tb in &mut bufs.bufs {
            if Arc::ptr_eq(&tb.sink, sink) && !tb.buf.is_empty() {
                tb.sink.append(&std::mem::take(&mut tb.buf));
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Span guard
// ---------------------------------------------------------------------------

struct SpanState {
    tracer: Arc<TracerInner>,
    record: SpanRecord,
    /// Opened via a `span_fine` variant — under tail sampling these are
    /// buffered per root instead of written immediately.
    fine: bool,
    /// Root span id resolved at open time (0 = unknown; only meaningful
    /// under tail sampling).
    root: u64,
}

/// A live span; ends (and is recorded) when dropped.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// This span's id (0 when the tracer is disabled) — pass it to
    /// [`Tracer::span_child`] from worker closures.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.record.id)
    }

    /// Whether this span will be recorded.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Attach a `key=value` attribute (no-op when disabled).
    pub fn set_attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(s) = &mut self.state {
            s.record.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Builder-style [`Span::set_attr`].
    pub fn with_attr(mut self, key: &str, value: impl std::fmt::Display) -> Span {
        self.set_attr(key, value);
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(mut s) = self.state.take() else {
            return;
        };
        s.record.end_ns = s.tracer.clock.now_ns();
        let token = Arc::as_ptr(&s.tracer) as usize;
        let buffer_locally = s.fine && s.root != 0 && s.tracer.tail.is_some();
        // Pop this span from the thread's stack (it is almost always the
        // top; out-of-order drops just remove the matching entry), and —
        // for tail-sampled fine spans, in the same borrow — check whether
        // the root is live on this thread, which decides where the record
        // buffers.
        let mut root_is_local = false;
        SPAN_STACK.with(|st| {
            let mut stack = st.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id, _)| t == token && id == s.record.id)
            {
                stack.remove(pos);
            }
            if buffer_locally {
                root_is_local = stack
                    .iter()
                    .rev()
                    .any(|&(t, id, _)| t == token && id == s.root);
            }
        });
        let is_root = s.record.parent == 0;
        if let Some(tail) = &s.tracer.tail {
            if !s.fine {
                lock(&tail.roots).remove(&s.record.id);
            }
            if is_root {
                // The verdict point: this root's buffered fine spans are
                // either rendered and flushed (before the root line, so
                // children precede their job in the file) or dropped
                // unrendered — the common, fast case. Same-thread spans
                // sit in this thread's buffer; cross-thread ones in the
                // shared map.
                let local: Vec<SpanRecord> = TAIL_LOCAL.with(|p| {
                    p.borrow_mut()
                        .extract_if(.., |&mut (t, r, _)| t == token && r == s.record.id)
                        .map(|(_, _, rec)| rec)
                        .collect()
                });
                let shared = lock(&tail.pending).remove(&s.record.id);
                let keep = if s.record.name == JOB_SPAN {
                    let threshold = tail.threshold_ns();
                    let duration = s.record.duration_ns();
                    tail.job_ns.record(duration);
                    s.record.attr("error").is_some() || duration >= threshold
                } else {
                    true
                };
                if keep {
                    let mut text = String::new();
                    for rec in local.iter().chain(shared.iter().flatten()) {
                        text.push_str(&rec.to_ndjson());
                        text.push('\n');
                    }
                    if !text.is_empty() {
                        s.tracer.sink.append(&text);
                    }
                }
            } else if buffer_locally {
                let rec = std::mem::take(&mut s.record);
                if root_is_local {
                    TAIL_LOCAL.with(|p| p.borrow_mut().push((token, s.root, rec)));
                } else {
                    lock(&tail.pending).entry(s.root).or_default().push(rec);
                }
                return;
            }
            // Fine spans whose root is unknown (explicit parent that was
            // never seen) fall through and are written unconditionally —
            // never guessed, never lost.
        }
        let line = s.record.to_ndjson();
        BUFFERS.with(|b| {
            let mut bufs = b.borrow_mut();
            let tb = match bufs
                .bufs
                .iter_mut()
                .position(|tb| Arc::ptr_eq(&tb.sink, &s.tracer.sink))
            {
                Some(i) => &mut bufs.bufs[i],
                None => {
                    bufs.bufs.push(ThreadBuf {
                        sink: Arc::clone(&s.tracer.sink),
                        buf: String::with_capacity(FLUSH_BYTES / 4),
                    });
                    bufs.bufs.last_mut().expect("just pushed")
                }
            };
            tb.buf.push_str(&line);
            tb.buf.push('\n');
            if is_root || tb.buf.len() >= FLUSH_BYTES {
                tb.sink.append(&std::mem::take(&mut tb.buf));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn disabled_tracer_records_nothing_and_is_cheap() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut span = t.span("anything").with_attr("k", "v");
        span.set_attr("x", 1);
        assert_eq!(span.id(), 0);
        assert!(!span.is_recording());
        drop(span);
        assert_eq!(t.now_ns(), 0);
        assert!(t.drain_memory().is_empty());
    }

    #[test]
    fn fine_spans_record_only_at_fine_detail() {
        let coarse = Tracer::memory();
        assert!(!coarse.fine_detail());
        drop(coarse.span_fine("llm.call"));
        drop(coarse.span_child_fine("stage.fragment", 7));
        drop(coarse.span("stage.merge"));
        let names: Vec<String> = coarse.drain_memory().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["stage.merge"]);

        let fine = Tracer::memory().with_fine_detail();
        assert!(fine.fine_detail());
        // A fine span parents on the TLS stack like any other.
        let outer = fine.span("stage.fragments");
        let inner = fine.span_fine("llm.call");
        assert!(inner.is_recording());
        let inner_parent = outer.id();
        drop(inner);
        drop(outer);
        drop(fine.span_child_fine("stage.fragment", 3));
        let records = fine.drain_memory();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "llm.call");
        assert_eq!(records[0].parent, inner_parent);
        assert_eq!(records[2].parent, 3);
    }

    #[test]
    fn ndjson_round_trip_preserves_every_field() {
        let record = SpanRecord {
            id: 42,
            parent: 7,
            name: "stage.retrieve".to_string(),
            start_ns: 1_000,
            end_ns: 2_500,
            attrs: vec![
                ("job".to_string(), "sb01_small_io".to_string()),
                (
                    "quote\"newline\n".to_string(),
                    "tab\tback\\slash".to_string(),
                ),
                ("unicode".to_string(), "héllo—π".to_string()),
            ],
        };
        let line = record.to_ndjson();
        let back = SpanRecord::parse(&line).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.duration_ns(), 1_500);
        assert_eq!(back.attr("job"), Some("sb01_small_io"));
        assert_eq!(back.attr("missing"), None);
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"id":"string"}"#,
            r#"{"parent":1}"#, // no id
            r#"{"id":1,"wat":3}"#,
        ] {
            assert!(SpanRecord::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn virtual_clock_spans_nest_and_order_deterministically() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::with_clock_memory(Box::new(Arc::clone(&clock)));
        assert!(t.enabled());

        let mut outer = t.span("job").with_attr("job", "j1");
        clock.advance(100);
        {
            let _inner1 = t.span("stage.retrieve");
            clock.advance(40);
        } // inner1: [100, 140]
        {
            let _inner2 = t.span("stage.merge");
            clock.advance(60);
        } // inner2: [140, 200]
        clock.advance(10);
        outer.set_attr("cached", false);
        drop(outer); // outer: [0, 210]

        let records = t.drain_memory();
        assert_eq!(records.len(), 3);
        // Children complete (and are written) before the root.
        let inner1 = &records[0];
        let inner2 = &records[1];
        let root = &records[2];
        assert_eq!(root.name, "job");
        assert_eq!(root.parent, 0);
        assert_eq!((root.start_ns, root.end_ns), (0, 210));
        assert_eq!(inner1.name, "stage.retrieve");
        assert_eq!(inner1.parent, root.id);
        assert_eq!((inner1.start_ns, inner1.end_ns), (100, 140));
        assert_eq!(inner2.name, "stage.merge");
        assert_eq!(inner2.parent, root.id);
        assert_eq!((inner2.start_ns, inner2.end_ns), (140, 200));
        assert!(inner1.id < inner2.id, "ids are allocation-ordered");
        assert_eq!(root.attr("cached"), Some("false"));

        // Drained means drained.
        assert!(t.drain_memory().is_empty());
    }

    #[test]
    fn explicit_parent_and_start_cross_thread() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::with_clock_memory(Box::new(Arc::clone(&clock)));
        let root = t.span("job");
        let root_id = root.id();
        clock.advance(500);
        // Simulates the queue-wait span: observed start in the past.
        drop(t.span_at("stage.queue_wait", 120, root_id));
        drop(root);
        let records = t.drain_memory();
        let wait = records
            .iter()
            .find(|r| r.name == "stage.queue_wait")
            .unwrap();
        assert_eq!(wait.parent, root_id);
        assert_eq!((wait.start_ns, wait.end_ns), (120, 500));
        // span_child adopts the explicit parent even with an empty stack.
        let child = t.span_child("fragment", 999);
        drop(child);
        let records = t.drain_memory();
        assert_eq!(records[0].parent, 999);
    }

    #[test]
    fn spans_from_worker_threads_flush_on_thread_exit() {
        let t = Arc::new(Tracer::memory());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    // Non-root span: stays in the thread buffer until the
                    // thread exits (roots would flush immediately).
                    drop(t.span_child("fragment", 1).with_attr("i", i));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let records = t.drain_memory();
        assert_eq!(records.len(), 4);
        let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids are unique across threads");
    }

    #[test]
    fn tail_rule_parse_and_display() {
        assert_eq!(
            TailRule::parse("250ms").unwrap().threshold,
            TailThreshold::Millis(250)
        );
        assert_eq!(
            TailRule::parse("p99").unwrap().threshold,
            TailThreshold::Percentile(0.99)
        );
        assert_eq!(
            TailRule::parse("p999").unwrap().threshold,
            TailThreshold::Percentile(0.999)
        );
        assert_eq!(
            TailRule::parse("p5").unwrap().threshold,
            TailThreshold::Percentile(0.05)
        );
        assert_eq!(
            TailRule::parse("p9999").unwrap().threshold,
            TailThreshold::Percentile(0.9999)
        );
        for bad in [
            "", "250", "ms", "p", "p0", "p100", "p100.5", "p123", "pxx", "-3ms", "tail:p99",
        ] {
            assert!(TailRule::parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(TailRule::parse("250ms").unwrap().to_string(), "tail:250ms");
        assert_eq!(TailRule::parse("p99").unwrap().to_string(), "tail:p99");
        assert_eq!(TailRule::parse("p999").unwrap().to_string(), "tail:p999");
    }

    fn tail_tracer(clock: &Arc<VirtualClock>, rule: &str) -> Tracer {
        Tracer::with_clock_memory(Box::new(Arc::clone(clock)))
            .with_tail_sampling(TailRule::parse(rule).unwrap())
    }

    #[test]
    fn tail_sampling_drops_fine_spans_of_fast_jobs() {
        let clock = Arc::new(VirtualClock::new());
        let t = tail_tracer(&clock, "10ms");
        assert!(t.fine_detail(), "tail sampling implies fine detail");
        assert_eq!(
            t.tail_sampling().unwrap().threshold,
            TailThreshold::Millis(10)
        );

        // Fast job: 1 ms. Fine spans vanish, coarse stage spans stay.
        let job = t.span("job");
        let _ = job.id();
        {
            let _stage = t.span("stage.llm");
            drop(t.span_fine("llm.call"));
            clock.advance(1_000_000);
        }
        drop(job);
        let names: Vec<String> = t.drain_memory().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["stage.llm", "job"]);
    }

    #[test]
    fn tail_sampling_keeps_slow_and_errored_jobs() {
        let clock = Arc::new(VirtualClock::new());
        let t = tail_tracer(&clock, "10ms");

        // Slow job: 20 ms. Fine spans flush, before the root line.
        {
            let _job = t.span("job");
            drop(t.span_fine("llm.call"));
            clock.advance(20_000_000);
        }
        let names: Vec<String> = t.drain_memory().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["llm.call", "job"]);

        // Fast but errored job: kept too.
        {
            let mut job = t.span("job");
            drop(t.span_fine("llm.call"));
            clock.advance(1_000_000);
            job.set_attr("error", "queue_full");
        }
        let records = t.drain_memory();
        assert!(records.iter().any(|r| r.name == "llm.call"));

        // Cross-thread fine child resolves its root through the live map
        // and is judged with its job.
        let job = t.span("job");
        let job_id = job.id();
        let th = {
            let t2 = Tracer {
                inner: t.inner.clone(),
            };
            let clock2 = Arc::clone(&clock);
            std::thread::spawn(move || {
                drop(t2.span_child_fine("vecindex.scan", job_id));
                clock2.advance(30_000_000);
            })
        };
        th.join().unwrap();
        drop(job);
        let records = t.drain_memory();
        assert!(
            records.iter().any(|r| r.name == "vecindex.scan"),
            "slow job keeps cross-thread fine span"
        );
    }

    #[test]
    fn tail_sampling_non_job_roots_always_keep_fine_spans() {
        let clock = Arc::new(VirtualClock::new());
        let t = tail_tracer(&clock, "1000ms");
        {
            let _conn = t.span("conn");
            drop(t.span_fine("read_line"));
        }
        let names: Vec<String> = t.drain_memory().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["read_line", "conn"], "rule only speaks about jobs");
    }

    #[test]
    fn tail_percentile_warms_up_before_keeping_anything() {
        let clock = Arc::new(VirtualClock::new());
        let t = tail_tracer(&clock, "p50");
        // 40 jobs of 10 ms each; the first 32 are warmup (nothing kept),
        // after which each 10 ms job sits at p50 and is kept.
        let mut kept_before_warmup = 0;
        let mut kept_after_warmup = 0;
        for i in 0..40 {
            {
                let _job = t.span("job");
                drop(t.span_fine("llm.call"));
                clock.advance(10_000_000);
            }
            let fine = t
                .drain_memory()
                .iter()
                .filter(|r| r.name == "llm.call")
                .count();
            if i < 32 {
                kept_before_warmup += fine;
            } else {
                kept_after_warmup += fine;
            }
        }
        assert_eq!(kept_before_warmup, 0, "warmup keeps nothing");
        assert_eq!(kept_after_warmup, 8, "at-threshold jobs kept after warmup");
    }

    #[test]
    fn file_sink_appends_parseable_ndjson() {
        let dir = std::env::temp_dir().join(format!("ioobserve-file-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Tracer::to_dir(&dir).unwrap();
        let path = t.trace_path().unwrap().to_path_buf();
        drop(t.span("job").with_attr("job", "j1"));
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let records = parse_spans(&text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "job");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
