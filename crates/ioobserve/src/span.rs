//! Structured span tracing with NDJSON output.
//!
//! A [`Tracer`] hands out [`Span`] guards: a span opens with a name, ends
//! when the guard drops, and is written as one NDJSON line carrying its
//! id, parent id, start/end nanoseconds, and `key=value` attributes.
//!
//! # Cost model
//!
//! - **Disabled** (the default, and the only mode unless the daemon is
//!   started with `--trace-dir`): [`Tracer::span`] is one branch on an
//!   `Option` and returns an empty guard — no allocation, no clock read,
//!   no synchronization. The bench gate holds the whole pipeline to <3%
//!   overhead in this mode, and in practice it is in the noise.
//! - **Enabled**: completed spans are rendered into a **per-thread
//!   buffer** (no lock on the span path) which is appended to the shared
//!   sink only when it exceeds [`FLUSH_BYTES`], when a *root* span ends
//!   (one lock per job, not per span), or when the thread exits.
//!
//! # Parenting
//!
//! Within a thread, spans nest automatically: each live span sits on a
//! thread-local stack and new spans adopt the top as their parent. Work
//! that hops threads (the rayon-shim `par_iter` inside a job) passes the
//! parent id explicitly via [`Tracer::span_child`]; spans whose parent
//! cannot be known (e.g. deep library calls on a foreign pool thread)
//! simply record parent 0 and are reported as unattributed by
//! `trace-report` rather than guessed.
//!
//! # Determinism
//!
//! Timestamps come from a [`Clock`](crate::clock::Clock); tests inject a
//! [`VirtualClock`](crate::clock::VirtualClock) so span boundaries are
//! exact. Tracing never changes what the pipeline computes — the
//! byte-identity test in `tests/observability.rs` pins diagnosis output
//! equal with tracing on and off.

use crate::clock::{Clock, MonotonicClock};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Per-thread buffer size that forces a flush to the shared sink.
const FLUSH_BYTES: usize = 32 * 1024;

fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Span records and their NDJSON form
// ---------------------------------------------------------------------------

/// One completed span, as written to (and read back from) the NDJSON sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the tracer (starts at 1; 0 is "no span").
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Span name (e.g. `job`, `stage.retrieve`, `llm.call`).
    pub name: String,
    /// Start, in the tracer clock's nanoseconds.
    pub start_ns: u64,
    /// End, in the tracer clock's nanoseconds.
    pub end_ns: u64,
    /// `key=value` attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds (0 if the clock went backwards).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// First attribute with the given key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Render as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(96 + self.name.len());
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"attrs\":{{",
            self.id,
            self.parent,
            escape_json(&self.name),
            self.start_ns,
            self.end_ns,
        );
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
        out
    }

    /// Parse one NDJSON line back into a record. Accepts exactly the
    /// shape [`SpanRecord::to_ndjson`] writes (keys in any order).
    pub fn parse(line: &str) -> Result<SpanRecord, String> {
        let mut p = MiniParser::new(line);
        let mut record = SpanRecord {
            id: 0,
            parent: 0,
            name: String::new(),
            start_ns: 0,
            end_ns: 0,
            attrs: Vec::new(),
        };
        p.expect('{')?;
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            match key.as_str() {
                "id" => record.id = p.number()?,
                "parent" => record.parent = p.number()?,
                "name" => record.name = p.string()?,
                "start_ns" => record.start_ns = p.number()?,
                "end_ns" => record.end_ns = p.number()?,
                "attrs" => {
                    p.expect('{')?;
                    loop {
                        p.skip_ws();
                        if p.eat('}') {
                            break;
                        }
                        let k = p.string()?;
                        p.skip_ws();
                        p.expect(':')?;
                        p.skip_ws();
                        let v = p.string()?;
                        record.attrs.push((k, v));
                        p.skip_ws();
                        let _ = p.eat(',');
                    }
                }
                other => return Err(format!("unknown span field {other:?}")),
            }
            p.skip_ws();
            let _ = p.eat(',');
        }
        if record.id == 0 {
            return Err("span record without an id".to_string());
        }
        Ok(record)
    }
}

/// Parse a whole NDJSON buffer (blank lines skipped) into records.
pub fn parse_spans(text: &str) -> Result<Vec<SpanRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(SpanRecord::parse)
        .collect()
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON cursor for the span record shape (objects of numbers,
/// strings, and one level of string→string nesting).
struct MiniParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MiniParser<'a> {
    fn new(s: &'a str) -> Self {
        MiniParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| e.to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        if !self.eat('"') {
            return Err(format!("expected a string at byte {}", self.pos));
        }
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("dangling escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let char_start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = char_start + width;
                    let chunk = self.bytes.get(char_start..end).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = end;
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xf0 => 4,
        b if b >= 0xe0 => 3,
        _ => 2,
    }
}

// ---------------------------------------------------------------------------
// Sinks and per-thread buffering
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum SinkKind {
    /// Append to an NDJSON file (buffered; flushed on root spans and at
    /// thread/tracer teardown).
    File {
        path: PathBuf,
        writer: Mutex<std::io::BufWriter<std::fs::File>>,
    },
    /// Accumulate in memory (tests and in-process inspection).
    Memory(Mutex<String>),
}

#[derive(Debug)]
struct SinkState {
    kind: SinkKind,
}

impl SinkState {
    fn append(&self, chunk: &str) {
        match &self.kind {
            SinkKind::File { writer, .. } => {
                let mut w = lock(writer);
                // Trace loss is never worth failing the pipeline over.
                let _ = w.write_all(chunk.as_bytes());
                let _ = w.flush();
            }
            SinkKind::Memory(buf) => lock(buf).push_str(chunk),
        }
    }
}

struct ThreadBuf {
    sink: Arc<SinkState>,
    buf: String,
}

/// All of this thread's tracer buffers; flushed when the thread exits.
#[derive(Default)]
struct ThreadBufs {
    bufs: Vec<ThreadBuf>,
}

impl Drop for ThreadBufs {
    fn drop(&mut self) {
        for tb in &mut self.bufs {
            if !tb.buf.is_empty() {
                tb.sink.append(&tb.buf);
            }
        }
    }
}

thread_local! {
    /// Stack of live spans on this thread: (tracer token, span id).
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread rendered-span buffers, one per sink this thread has
    /// written to (almost always exactly one).
    static BUFFERS: RefCell<ThreadBufs> = RefCell::new(ThreadBufs::default());
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

struct TracerInner {
    clock: Box<dyn Clock>,
    sink: Arc<SinkState>,
    next_id: AtomicU64,
    /// Record fine-grained spans (`span_fine` and friends) too. Off by
    /// default: the coarse stage tiling costs a handful of spans per job,
    /// while per-call / per-fragment detail costs hundreds.
    fine: bool,
}

/// Hands out spans. Cheap to share (`Arc` inside); a disabled tracer is a
/// `None` and costs one branch per call.
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing (the default mode).
    pub const fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Trace to `<dir>/spans-<pid>.ndjson` with a monotonic clock. The
    /// directory is created if missing; the file is appended to, so
    /// restarts of the same process tree accumulate in one directory.
    pub fn to_dir(dir: impl AsRef<Path>) -> std::io::Result<Tracer> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("spans-{}.ndjson", std::process::id()));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Self::build(
            Box::new(MonotonicClock::new()),
            SinkKind::File {
                path,
                writer: Mutex::new(std::io::BufWriter::new(file)),
            },
        ))
    }

    /// Trace into an in-memory buffer with a monotonic clock.
    pub fn memory() -> Tracer {
        Self::with_clock_memory(Box::new(MonotonicClock::new()))
    }

    /// Trace into an in-memory buffer with an explicit clock (tests pass
    /// a [`VirtualClock`](crate::clock::VirtualClock) here).
    pub fn with_clock_memory(clock: Box<dyn Clock>) -> Tracer {
        Self::build(clock, SinkKind::Memory(Mutex::new(String::new())))
    }

    fn build(clock: Box<dyn Clock>, kind: SinkKind) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                sink: Arc::new(SinkState { kind }),
                next_id: AtomicU64::new(1),
                fine: false,
            })),
        }
    }

    /// Turn on fine-grained detail: [`Tracer::span_fine`] /
    /// [`Tracer::span_child_fine`] record real spans instead of no-ops.
    /// Builder-style — call before the tracer is shared or installed.
    pub fn with_fine_detail(mut self) -> Tracer {
        if let Some(inner) = self.inner.as_mut().and_then(Arc::get_mut) {
            inner.fine = true;
        }
        self
    }

    /// Whether fine-grained spans are being recorded.
    pub fn fine_detail(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.fine)
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time on the tracer's clock (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// The file this tracer appends to, if it has one.
    pub fn trace_path(&self) -> Option<&Path> {
        match &self.inner.as_ref()?.sink.kind {
            SinkKind::File { path, .. } => Some(path),
            SinkKind::Memory(_) => None,
        }
    }

    /// Open a span whose parent is the innermost live span on this
    /// thread (0 if none).
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        let token = Arc::as_ptr(inner) as usize;
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _)| *t == token)
                .map_or(0, |(_, id)| *id)
        });
        self.open(inner, name, inner.clock.now_ns(), parent)
    }

    /// Fine-detail variant of [`Tracer::span`]: records only when
    /// [`Tracer::fine_detail`] is on. Use for high-volume spans (one per
    /// LLM call, per fragment, per index scan) whose cost would dominate
    /// a default trace.
    pub fn span_fine(&self, name: &str) -> Span {
        if self.fine_detail() {
            self.span(name)
        } else {
            Span { state: None }
        }
    }

    /// Fine-detail variant of [`Tracer::span_child`].
    pub fn span_child_fine(&self, name: &str, parent: u64) -> Span {
        if self.fine_detail() {
            self.span_child(name, parent)
        } else {
            Span { state: None }
        }
    }

    /// Open a span with an explicit parent id — the cross-thread form
    /// (pass the enclosing span's [`Span::id`] into the worker closure).
    pub fn span_child(&self, name: &str, parent: u64) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        self.open(inner, name, inner.clock.now_ns(), parent)
    }

    /// Open a span with an explicit start time and parent — for phases
    /// whose beginning was observed before the span could be created
    /// (e.g. queue wait: enqueue happens on the submitter's thread, the
    /// span is recorded by the worker at dequeue).
    pub fn span_at(&self, name: &str, start_ns: u64, parent: u64) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        self.open(inner, name, start_ns, parent)
    }

    fn open(&self, inner: &Arc<TracerInner>, name: &str, start_ns: u64, parent: u64) -> Span {
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let token = Arc::as_ptr(inner) as usize;
        SPAN_STACK.with(|s| s.borrow_mut().push((token, id)));
        Span {
            state: Some(SpanState {
                tracer: Arc::clone(inner),
                record: SpanRecord {
                    id,
                    parent,
                    name: name.to_string(),
                    start_ns,
                    end_ns: 0,
                    attrs: Vec::new(),
                },
            }),
        }
    }

    /// Flush this thread's buffered spans to the sink (and the sink to
    /// disk, for file sinks). Spans buffered on *other* live threads
    /// flush when those threads exit or fill their buffers.
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        flush_thread_buffer(&inner.sink);
    }

    /// Take everything recorded so far (memory sinks only), parsed back
    /// into records. Flushes the calling thread's buffer first.
    pub fn drain_memory(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        flush_thread_buffer(&inner.sink);
        let SinkKind::Memory(buf) = &inner.sink.kind else {
            return Vec::new();
        };
        let text = std::mem::take(&mut *lock(buf));
        parse_spans(&text).expect("tracer wrote valid NDJSON")
    }
}

fn flush_thread_buffer(sink: &Arc<SinkState>) {
    BUFFERS.with(|b| {
        let mut bufs = b.borrow_mut();
        for tb in &mut bufs.bufs {
            if Arc::ptr_eq(&tb.sink, sink) && !tb.buf.is_empty() {
                tb.sink.append(&std::mem::take(&mut tb.buf));
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Span guard
// ---------------------------------------------------------------------------

struct SpanState {
    tracer: Arc<TracerInner>,
    record: SpanRecord,
}

/// A live span; ends (and is recorded) when dropped.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// This span's id (0 when the tracer is disabled) — pass it to
    /// [`Tracer::span_child`] from worker closures.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.record.id)
    }

    /// Whether this span will be recorded.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Attach a `key=value` attribute (no-op when disabled).
    pub fn set_attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(s) = &mut self.state {
            s.record.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Builder-style [`Span::set_attr`].
    pub fn with_attr(mut self, key: &str, value: impl std::fmt::Display) -> Span {
        self.set_attr(key, value);
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(mut s) = self.state.take() else {
            return;
        };
        s.record.end_ns = s.tracer.clock.now_ns();
        let token = Arc::as_ptr(&s.tracer) as usize;
        // Pop this span from the thread's stack (it is almost always the
        // top; out-of-order drops just remove the matching entry).
        SPAN_STACK.with(|st| {
            let mut stack = st.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id)| t == token && id == s.record.id)
            {
                stack.remove(pos);
            }
        });
        let is_root = s.record.parent == 0;
        let line = s.record.to_ndjson();
        BUFFERS.with(|b| {
            let mut bufs = b.borrow_mut();
            let tb = match bufs
                .bufs
                .iter_mut()
                .position(|tb| Arc::ptr_eq(&tb.sink, &s.tracer.sink))
            {
                Some(i) => &mut bufs.bufs[i],
                None => {
                    bufs.bufs.push(ThreadBuf {
                        sink: Arc::clone(&s.tracer.sink),
                        buf: String::with_capacity(FLUSH_BYTES / 4),
                    });
                    bufs.bufs.last_mut().expect("just pushed")
                }
            };
            tb.buf.push_str(&line);
            tb.buf.push('\n');
            if is_root || tb.buf.len() >= FLUSH_BYTES {
                tb.sink.append(&std::mem::take(&mut tb.buf));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn disabled_tracer_records_nothing_and_is_cheap() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut span = t.span("anything").with_attr("k", "v");
        span.set_attr("x", 1);
        assert_eq!(span.id(), 0);
        assert!(!span.is_recording());
        drop(span);
        assert_eq!(t.now_ns(), 0);
        assert!(t.drain_memory().is_empty());
    }

    #[test]
    fn fine_spans_record_only_at_fine_detail() {
        let coarse = Tracer::memory();
        assert!(!coarse.fine_detail());
        drop(coarse.span_fine("llm.call"));
        drop(coarse.span_child_fine("stage.fragment", 7));
        drop(coarse.span("stage.merge"));
        let names: Vec<String> = coarse.drain_memory().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["stage.merge"]);

        let fine = Tracer::memory().with_fine_detail();
        assert!(fine.fine_detail());
        // A fine span parents on the TLS stack like any other.
        let outer = fine.span("stage.fragments");
        let inner = fine.span_fine("llm.call");
        assert!(inner.is_recording());
        let inner_parent = outer.id();
        drop(inner);
        drop(outer);
        drop(fine.span_child_fine("stage.fragment", 3));
        let records = fine.drain_memory();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "llm.call");
        assert_eq!(records[0].parent, inner_parent);
        assert_eq!(records[2].parent, 3);
    }

    #[test]
    fn ndjson_round_trip_preserves_every_field() {
        let record = SpanRecord {
            id: 42,
            parent: 7,
            name: "stage.retrieve".to_string(),
            start_ns: 1_000,
            end_ns: 2_500,
            attrs: vec![
                ("job".to_string(), "sb01_small_io".to_string()),
                (
                    "quote\"newline\n".to_string(),
                    "tab\tback\\slash".to_string(),
                ),
                ("unicode".to_string(), "héllo—π".to_string()),
            ],
        };
        let line = record.to_ndjson();
        let back = SpanRecord::parse(&line).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.duration_ns(), 1_500);
        assert_eq!(back.attr("job"), Some("sb01_small_io"));
        assert_eq!(back.attr("missing"), None);
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"id":"string"}"#,
            r#"{"parent":1}"#, // no id
            r#"{"id":1,"wat":3}"#,
        ] {
            assert!(SpanRecord::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn virtual_clock_spans_nest_and_order_deterministically() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::with_clock_memory(Box::new(Arc::clone(&clock)));
        assert!(t.enabled());

        let mut outer = t.span("job").with_attr("job", "j1");
        clock.advance(100);
        {
            let _inner1 = t.span("stage.retrieve");
            clock.advance(40);
        } // inner1: [100, 140]
        {
            let _inner2 = t.span("stage.merge");
            clock.advance(60);
        } // inner2: [140, 200]
        clock.advance(10);
        outer.set_attr("cached", false);
        drop(outer); // outer: [0, 210]

        let records = t.drain_memory();
        assert_eq!(records.len(), 3);
        // Children complete (and are written) before the root.
        let inner1 = &records[0];
        let inner2 = &records[1];
        let root = &records[2];
        assert_eq!(root.name, "job");
        assert_eq!(root.parent, 0);
        assert_eq!((root.start_ns, root.end_ns), (0, 210));
        assert_eq!(inner1.name, "stage.retrieve");
        assert_eq!(inner1.parent, root.id);
        assert_eq!((inner1.start_ns, inner1.end_ns), (100, 140));
        assert_eq!(inner2.name, "stage.merge");
        assert_eq!(inner2.parent, root.id);
        assert_eq!((inner2.start_ns, inner2.end_ns), (140, 200));
        assert!(inner1.id < inner2.id, "ids are allocation-ordered");
        assert_eq!(root.attr("cached"), Some("false"));

        // Drained means drained.
        assert!(t.drain_memory().is_empty());
    }

    #[test]
    fn explicit_parent_and_start_cross_thread() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::with_clock_memory(Box::new(Arc::clone(&clock)));
        let root = t.span("job");
        let root_id = root.id();
        clock.advance(500);
        // Simulates the queue-wait span: observed start in the past.
        drop(t.span_at("stage.queue_wait", 120, root_id));
        drop(root);
        let records = t.drain_memory();
        let wait = records
            .iter()
            .find(|r| r.name == "stage.queue_wait")
            .unwrap();
        assert_eq!(wait.parent, root_id);
        assert_eq!((wait.start_ns, wait.end_ns), (120, 500));
        // span_child adopts the explicit parent even with an empty stack.
        let child = t.span_child("fragment", 999);
        drop(child);
        let records = t.drain_memory();
        assert_eq!(records[0].parent, 999);
    }

    #[test]
    fn spans_from_worker_threads_flush_on_thread_exit() {
        let t = Arc::new(Tracer::memory());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    // Non-root span: stays in the thread buffer until the
                    // thread exits (roots would flush immediately).
                    drop(t.span_child("fragment", 1).with_attr("i", i));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let records = t.drain_memory();
        assert_eq!(records.len(), 4);
        let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids are unique across threads");
    }

    #[test]
    fn file_sink_appends_parseable_ndjson() {
        let dir = std::env::temp_dir().join(format!("ioobserve-file-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Tracer::to_dir(&dir).unwrap();
        let path = t.trace_path().unwrap().to_path_buf();
        drop(t.span("job").with_attr("job", "j1"));
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let records = parse_spans(&text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "job");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
