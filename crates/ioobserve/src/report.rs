//! Fold a span NDJSON file into a per-stage latency attribution table.
//!
//! The daemon emits one root `job` span per diagnosis plus `stage.*`
//! child spans (queue wait, preprocess, retrieve, LLM, merge, persist).
//! [`fold_spans`] groups every `stage.*` span under its root ancestor,
//! aggregates exact per-stage latency distributions (the offline report
//! can afford to sort real samples — no bucketing error here), and
//! computes per-job *coverage*: the fraction of each job's wall time
//! that the stage spans account for. Only **top-most** stage spans (no
//! `stage.*` ancestor between them and the job root) count toward
//! coverage, so `stage.retrieve` nested inside `stage.fragment` is not
//! double-counted; every stage span still gets its own latency row. The
//! acceptance bar for the instrumentation is coverage ≥ 95% on every
//! job.

use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Aggregated latency for one stage name across all jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Span name (e.g. `stage.retrieve`).
    pub name: String,
    /// Number of spans folded into this row.
    pub count: u64,
    /// Sum of span durations, ns.
    pub total_ns: u64,
    /// Mean span duration, ns.
    pub mean_ns: u64,
    /// Exact median span duration, ns.
    pub p50_ns: u64,
    /// Exact p99 span duration, ns.
    pub p99_ns: u64,
    /// `total_ns` as a fraction of all jobs' wall time.
    pub share: f64,
}

/// The folded view of one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Number of root `job` spans.
    pub jobs: u64,
    /// Total wall time across job spans, ns.
    pub job_total_ns: u64,
    /// One row per `stage.*` name, sorted by descending total time.
    pub stages: Vec<StageRow>,
    /// Per-job stage coverage: Σ(stage durations) / job duration.
    pub coverage_min: f64,
    /// Mean per-job stage coverage.
    pub coverage_mean: f64,
    /// Spans whose root ancestor is not a `job` span (cross-pool work
    /// that could not be attributed; reported, never guessed).
    pub orphan_spans: u64,
}

/// Name of the root span each stage span must descend from.
pub const JOB_SPAN: &str = "job";
/// Prefix of spans that count toward a job's latency decomposition.
pub const STAGE_PREFIX: &str = "stage.";

/// Resolve a span's root ancestor, memoized. Roots map to their own id;
/// spans with a missing parent record resolve to 0.
fn resolve(id: u64, by_id: &HashMap<u64, &SpanRecord>, memo: &mut HashMap<u64, u64>) -> u64 {
    if let Some(&r) = memo.get(&id) {
        return r;
    }
    let root = match by_id.get(&id) {
        None => 0,
        Some(rec) if rec.parent == 0 => id,
        Some(rec) => resolve(rec.parent, by_id, memo),
    };
    memo.insert(id, root);
    root
}

/// Is there a `stage.*` ancestor between this span and its root? Nested
/// stages tile time their ancestor already accounts for.
fn nested_in_stage(rec: &SpanRecord, by_id: &HashMap<u64, &SpanRecord>) -> bool {
    let mut cur = rec.parent;
    while cur != 0 {
        match by_id.get(&cur) {
            Some(p) if p.name.starts_with(STAGE_PREFIX) => return true,
            Some(p) => cur = p.parent,
            None => break,
        }
    }
    false
}

/// Fold parsed span records into a [`TraceReport`].
pub fn fold_spans(records: &[SpanRecord]) -> TraceReport {
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut root_of: HashMap<u64, u64> = HashMap::with_capacity(records.len());

    let mut report = TraceReport::default();
    let mut stage_samples: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    // job root id -> (job duration, sum of its stage durations)
    let mut job_cover: HashMap<u64, (u64, u64)> = HashMap::new();

    for rec in records {
        if rec.parent == 0 && rec.name == JOB_SPAN {
            report.jobs += 1;
            report.job_total_ns += rec.duration_ns();
            job_cover.entry(rec.id).or_insert((0, 0)).0 = rec.duration_ns();
        }
    }

    for rec in records {
        if !rec.name.starts_with(STAGE_PREFIX) {
            continue;
        }
        let root = resolve(rec.id, &by_id, &mut root_of);
        let under_job = by_id
            .get(&root)
            .is_some_and(|r| r.parent == 0 && r.name == JOB_SPAN);
        if !under_job {
            report.orphan_spans += 1;
            continue;
        }
        stage_samples
            .entry(rec.name.as_str())
            .or_default()
            .push(rec.duration_ns());
        // Coverage counts only top-most stage spans.
        if !nested_in_stage(rec, &by_id) {
            job_cover.entry(root).or_insert((0, 0)).1 += rec.duration_ns();
        }
    }

    for (name, mut samples) in stage_samples {
        samples.sort_unstable();
        let count = samples.len() as u64;
        let total: u64 = samples.iter().sum();
        let exact = |p: f64| -> u64 {
            let rank = ((p * count as f64).ceil() as usize).max(1);
            samples[rank - 1]
        };
        report.stages.push(StageRow {
            name: name.to_string(),
            count,
            total_ns: total,
            mean_ns: total / count,
            p50_ns: exact(0.50),
            p99_ns: exact(0.99),
            share: if report.job_total_ns == 0 {
                0.0
            } else {
                total as f64 / report.job_total_ns as f64
            },
        });
    }
    report
        .stages
        .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

    let coverages: Vec<f64> = job_cover
        .values()
        .filter(|(job_ns, _)| *job_ns > 0)
        .map(|(job_ns, stage_ns)| *stage_ns as f64 / *job_ns as f64)
        .collect();
    if !coverages.is_empty() {
        report.coverage_min = coverages.iter().copied().fold(f64::INFINITY, f64::min);
        report.coverage_mean = coverages.iter().sum::<f64>() / coverages.len() as f64;
    }
    report
}

/// Human-friendly duration: `1.23s` / `45.00ms` / `6.70us` / `89ns`.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl TraceReport {
    /// Render as an aligned text table (what `ioagentd trace-report`
    /// prints).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "jobs: {}  total: {}  coverage: min {:.1}% mean {:.1}%  orphan spans: {}",
            self.jobs,
            fmt_ns(self.job_total_ns),
            self.coverage_min * 100.0,
            self.coverage_mean * 100.0,
            self.orphan_spans,
        );
        let _ = writeln!(
            out,
            "{:<20} {:>7} {:>12} {:>12} {:>12} {:>12} {:>7}",
            "stage", "count", "total", "mean", "p50", "p99", "share"
        );
        for row in &self.stages {
            let _ = writeln!(
                out,
                "{:<20} {:>7} {:>12} {:>12} {:>12} {:>12} {:>6.1}%",
                row.name,
                row.count,
                fmt_ns(row.total_ns),
                fmt_ns(row.mean_ns),
                fmt_ns(row.p50_ns),
                fmt_ns(row.p99_ns),
                row.share * 100.0,
            );
        }
        out
    }
}

/// Merge span files from several processes into one record set.
///
/// Every tracer numbers spans from 1, so ids collide across processes;
/// each file's ids (and non-zero parents) are shifted into a disjoint
/// range before folding. Cross-process correlation is by the `trace_id`
/// attribute on `job` roots, not by span id.
pub fn merge_process_spans(files: Vec<Vec<SpanRecord>>) -> Vec<SpanRecord> {
    let mut merged = Vec::with_capacity(files.iter().map(Vec::len).sum());
    let mut offset = 0u64;
    for file in files {
        let max_id = file.iter().map(|r| r.id).max().unwrap_or(0);
        for mut rec in file {
            rec.id += offset;
            if rec.parent != 0 {
                rec.parent += offset;
            }
            merged.push(rec);
        }
        offset += max_id;
    }
    merged
}

/// One (logical) job for the `--slowest` listing: the root `job` span —
/// or, when several processes recorded roots sharing one `trace_id`,
/// all of them — plus its top-most stage critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDigest {
    /// `job` attribute of the root span(s), `-` when absent.
    pub job: String,
    /// `trace_id` attribute, `-` when absent.
    pub trace_id: String,
    /// Slowest root's wall time (roots sharing a trace overlap — the
    /// client-side span covers the daemon-side one — so max, not sum).
    pub duration_ns: u64,
    /// Top-most `stage.*` spans under the root(s), `(name, duration)`,
    /// in start order.
    pub stages: Vec<(String, u64)>,
}

/// The `n` slowest jobs, slowest first. Roots with the same `trace_id`
/// attribute are grouped into one digest (the multi-process case);
/// roots without one stay separate.
pub fn slowest_jobs(records: &[SpanRecord], n: usize) -> Vec<JobDigest> {
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut memo: HashMap<u64, u64> = HashMap::new();

    // Group roots: by trace_id when present, else by own span id.
    let mut groups: BTreeMap<String, Vec<&SpanRecord>> = BTreeMap::new();
    let mut root_group: HashMap<u64, String> = HashMap::new();
    for rec in records {
        if rec.parent == 0 && rec.name == JOB_SPAN {
            let key = rec
                .attr("trace_id")
                .map(str::to_string)
                .unwrap_or_else(|| format!("\u{0}span-{}", rec.id));
            root_group.insert(rec.id, key.clone());
            groups.entry(key).or_default().push(rec);
        }
    }

    // (group key, start_ns, name, duration) for top-most stages.
    let mut stages: HashMap<String, Vec<(u64, String, u64)>> = HashMap::new();
    for rec in records {
        if !rec.name.starts_with(STAGE_PREFIX) || nested_in_stage(rec, &by_id) {
            continue;
        }
        let root = resolve(rec.id, &by_id, &mut memo);
        if let Some(key) = root_group.get(&root) {
            stages.entry(key.clone()).or_default().push((
                rec.start_ns,
                rec.name.clone(),
                rec.duration_ns(),
            ));
        }
    }

    let mut digests: Vec<JobDigest> = groups
        .into_iter()
        .map(|(key, roots)| {
            let mut rows = stages.remove(&key).unwrap_or_default();
            rows.sort();
            let attr_or_dash = |name: &str| {
                roots
                    .iter()
                    .find_map(|r| r.attr(name))
                    .unwrap_or("-")
                    .to_string()
            };
            JobDigest {
                job: attr_or_dash("job"),
                trace_id: attr_or_dash("trace_id"),
                duration_ns: roots.iter().map(|r| r.duration_ns()).max().unwrap_or(0),
                stages: rows.into_iter().map(|(_, name, d)| (name, d)).collect(),
            }
        })
        .collect();
    digests.sort_by(|a, b| {
        b.duration_ns
            .cmp(&a.duration_ns)
            .then_with(|| a.trace_id.cmp(&b.trace_id))
    });
    let total = digests.len();
    digests.truncate(n.min(total));
    digests
}

/// Render a `--slowest` listing (what `ioagentd trace-report --slowest N`
/// prints under the stage table).
pub fn render_slowest(digests: &[JobDigest], total_jobs: u64) -> String {
    let mut out = format!("slowest {} of {} jobs\n", digests.len(), total_jobs);
    for (i, d) in digests.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>3}. job {}  trace {}  total {}",
            i + 1,
            d.job,
            d.trace_id,
            fmt_ns(d.duration_ns),
        );
        if !d.stages.is_empty() {
            let path = d
                .stages
                .iter()
                .map(|(name, dur)| {
                    format!(
                        "{} {}",
                        name.strip_prefix(STAGE_PREFIX).unwrap_or(name),
                        fmt_ns(*dur)
                    )
                })
                .collect::<Vec<_>>()
                .join(" -> ");
            let _ = writeln!(out, "     {path}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_ns: start,
            end_ns: end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn folds_stages_under_job_roots_with_coverage() {
        let records = vec![
            span(1, 0, "job", 0, 1_000),
            span(2, 1, "stage.queue_wait", 0, 100),
            span(3, 1, "stage.retrieve", 100, 500),
            span(4, 3, "llm.call", 150, 450), // non-stage child: ignored
            // Stage nested inside a stage: gets its own row, but does
            // not double-count toward the job's coverage.
            span(11, 3, "stage.llm", 150, 450),
            span(5, 1, "stage.merge", 500, 980),
            span(6, 0, "job", 1_000, 2_000),
            span(7, 6, "stage.queue_wait", 1_000, 1_200),
            span(8, 6, "stage.retrieve", 1_200, 2_000),
            // Stage under a non-job root: orphaned, not attributed.
            span(9, 0, "conn", 0, 10_000),
            span(10, 9, "stage.retrieve", 0, 5_000),
        ];
        let report = fold_spans(&records);
        assert_eq!(report.jobs, 2);
        assert_eq!(report.job_total_ns, 2_000);
        assert_eq!(report.orphan_spans, 1);
        // Job 1 coverage: (100+400+480)/1000 = 0.98; job 2: 1.0.
        assert!((report.coverage_min - 0.98).abs() < 1e-9);
        assert!((report.coverage_mean - 0.99).abs() < 1e-9);
        let retrieve = report
            .stages
            .iter()
            .find(|s| s.name == "stage.retrieve")
            .unwrap();
        assert_eq!(retrieve.count, 2);
        assert_eq!(retrieve.total_ns, 1_200);
        assert_eq!(retrieve.p50_ns, 400);
        assert_eq!(retrieve.p99_ns, 800);
        let nested_llm = report
            .stages
            .iter()
            .find(|s| s.name == "stage.llm")
            .unwrap();
        assert_eq!((nested_llm.count, nested_llm.total_ns), (1, 300));
        // Sorted by descending total.
        assert_eq!(report.stages[0].name, "stage.retrieve");
        // Shares are fractions of total job wall time.
        assert!((retrieve.share - 0.6).abs() < 1e-9);
    }

    #[test]
    fn deep_nesting_resolves_to_the_job_root() {
        let records = vec![
            span(1, 0, "job", 0, 100),
            span(2, 1, "stage.llm", 0, 90),
            span(3, 2, "stage.inner", 10, 20), // grandchild stage still attributed
        ];
        let report = fold_spans(&records);
        assert_eq!(report.jobs, 1);
        assert_eq!(report.orphan_spans, 0);
        assert_eq!(report.stages.len(), 2);
    }

    #[test]
    fn empty_and_missing_parent_inputs_are_safe() {
        assert_eq!(fold_spans(&[]).jobs, 0);
        let report = fold_spans(&[span(5, 99, "stage.retrieve", 0, 10)]);
        assert_eq!(report.orphan_spans, 1);
        assert_eq!(report.stages.len(), 0);
    }

    fn span_attrs(
        id: u64,
        parent: u64,
        name: &str,
        start: u64,
        end: u64,
        attrs: &[(&str, &str)],
    ) -> SpanRecord {
        SpanRecord {
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            ..span(id, parent, name, start, end)
        }
    }

    #[test]
    fn merge_process_spans_keeps_files_disjoint() {
        // Two processes, both numbering from 1.
        let a = vec![
            span(1, 0, "job", 0, 100),
            span(2, 1, "stage.retrieve", 0, 90),
        ];
        let b = vec![span(1, 0, "job", 0, 200), span(2, 1, "stage.llm", 0, 150)];
        let merged = merge_process_spans(vec![a, b]);
        let ids: Vec<u64> = merged.iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 2, 3, 4], "second file shifted past the first");
        assert_eq!(merged[3].parent, 3, "parents shifted with their file");
        let report = fold_spans(&merged);
        assert_eq!(report.jobs, 2);
        assert_eq!(report.orphan_spans, 0);
        // Order-insensitive: roots still resolve after the shift.
        assert_eq!(report.job_total_ns, 300);
    }

    #[test]
    fn slowest_jobs_ranks_and_lists_critical_path() {
        let records = vec![
            span_attrs(
                1,
                0,
                "job",
                0,
                1_000,
                &[("job", "fast"), ("trace_id", "t-1")],
            ),
            span(2, 1, "stage.retrieve", 0, 900),
            span_attrs(
                3,
                0,
                "job",
                0,
                5_000,
                &[("job", "slow"), ("trace_id", "t-2")],
            ),
            span(4, 3, "stage.queue_wait", 0, 1_000),
            span(5, 3, "stage.llm", 1_000, 4_500),
            span(6, 5, "stage.inner", 1_200, 1_300), // nested: not on the path
            span_attrs(7, 0, "job", 0, 3_000, &[("job", "mid")]), // no trace_id
        ];
        let digests = slowest_jobs(&records, 2);
        assert_eq!(digests.len(), 2);
        assert_eq!(digests[0].job, "slow");
        assert_eq!(digests[0].trace_id, "t-2");
        assert_eq!(digests[0].duration_ns, 5_000);
        assert_eq!(
            digests[0].stages,
            vec![
                ("stage.queue_wait".to_string(), 1_000),
                ("stage.llm".to_string(), 3_500)
            ]
        );
        assert_eq!(digests[1].job, "mid");
        assert_eq!(digests[1].trace_id, "-");

        let text = render_slowest(&digests, 3);
        assert!(text.contains("slowest 2 of 3 jobs"));
        assert!(text.contains("job slow  trace t-2  total 5.00us"));
        assert!(text.contains("queue_wait 1.00us -> llm 3.50us"));
    }

    #[test]
    fn slowest_jobs_groups_multi_process_roots_by_trace() {
        // Client process recorded a job root for trace t-9; the daemon
        // recorded its own root plus stages for the same trace.
        let client = vec![span_attrs(1, 0, "job", 0, 10_000, &[("trace_id", "t-9")])];
        let daemon = vec![
            span_attrs(1, 0, "job", 0, 9_000, &[("job", "j1"), ("trace_id", "t-9")]),
            span(2, 1, "stage.llm", 0, 8_000),
        ];
        let merged = merge_process_spans(vec![client, daemon]);
        let digests = slowest_jobs(&merged, 10);
        assert_eq!(digests.len(), 1, "same trace_id folds into one digest");
        assert_eq!(digests[0].trace_id, "t-9");
        assert_eq!(digests[0].job, "j1", "attrs found on any grouped root");
        assert_eq!(digests[0].duration_ns, 10_000, "max of the roots, not sum");
        assert_eq!(digests[0].stages.len(), 1);
    }

    #[test]
    fn table_renders_all_rows() {
        let records = vec![
            span(1, 0, "job", 0, 2_000_000),
            span(2, 1, "stage.retrieve", 0, 1_500_000),
            span(3, 1, "stage.merge", 1_500_000, 1_900_000),
        ];
        let table = fold_spans(&records).render_table();
        assert!(table.contains("jobs: 1"));
        assert!(table.contains("stage.retrieve"));
        assert!(table.contains("stage.merge"));
        assert!(table.contains("1.50ms"));
    }
}
