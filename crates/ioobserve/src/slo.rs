//! SLO declarations checked against windowed quantiles.
//!
//! A service-level objective here is one line of text:
//!
//! ```text
//! exec_p99 < 250ms over 60s
//! queue_wait_p999 <= 2s over 60s
//! stage.llm_p90 < 100ms over 10s
//! ```
//!
//! Left of the operator is a metric plus a quantile suffix. Bare names
//! resolve into the service registry (`exec` → `service.exec_ns`);
//! dotted names are taken as-is against any offered registry, with
//! `_ns` appended when missing (`stage.llm` → `stage.llm_ns`). The
//! quantile must be one of the four every
//! [`HistogramSnapshot`] answers:
//! `p50`, `p90`, `p99`, `p999`. The bound takes `ns`/`us`/`ms`/`s`
//! suffixes, and the trailing `over <duration>` picks which rolling
//! window ([`WindowSpec`](crate::window::WindowSpec)) to judge.
//!
//! Evaluation is deliberately burn-rate-shaped rather than lifetime-
//! shaped: a violation five minutes ago that has since recovered does
//! not fail the check, and hours of good samples cannot mask a
//! regression happening right now.
//!
//! # No data
//!
//! An empty window (or a metric that has never been recorded — registry
//! instruments are created lazily) makes a check *indeterminate*, which
//! counts as a pass: a just-started idle daemon is not in violation.
//! Asking for a window the registry does not offer is a configuration
//! error and fails loudly.

use crate::metrics::{HistogramSnapshot, RegistrySnapshot};
use crate::report::fmt_ns;
use std::fmt::Write as _;

/// One of the four quantiles a histogram snapshot can answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantile {
    /// Median.
    P50,
    /// 90th percentile.
    P90,
    /// 99th percentile.
    P99,
    /// 99.9th percentile.
    P999,
}

impl Quantile {
    /// The spelling used in declarations and reports (`p50` … `p999`).
    pub fn label(self) -> &'static str {
        match self {
            Quantile::P50 => "p50",
            Quantile::P90 => "p90",
            Quantile::P99 => "p99",
            Quantile::P999 => "p999",
        }
    }

    fn of(self, h: &HistogramSnapshot) -> u64 {
        match self {
            Quantile::P50 => h.p50,
            Quantile::P90 => h.p90,
            Quantile::P99 => h.p99,
            Quantile::P999 => h.p999,
        }
    }
}

/// One parsed SLO line.
#[derive(Debug, Clone, PartialEq)]
pub struct SloDecl {
    /// The declaration as written (normalized whitespace) — what
    /// reports print.
    pub text: String,
    /// Fully-resolved histogram name, e.g. `service.exec_ns`.
    pub metric: String,
    /// Quantile the bound applies to.
    pub quantile: Quantile,
    /// `true` for `<`, `false` for `<=`.
    pub strict: bool,
    /// Latency bound, ns.
    pub bound_ns: u64,
    /// Window the quantile is judged over, ns.
    pub window_ns: u64,
}

fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let split = s
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| format!("duration {s:?} is missing a unit (ns/us/ms/s)"))?;
    let (digits, unit) = s.split_at(split);
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration {s:?}: want <integer><unit>"))?;
    let scale = match unit {
        "ns" => 1,
        "us" => 1_000,
        "ms" => 1_000_000,
        "s" => 1_000_000_000,
        other => return Err(format!("unknown duration unit {other:?} in {s:?}")),
    };
    Ok(n.saturating_mul(scale))
}

/// Parse one line; `Ok(None)` for blanks and `#` comments.
pub fn parse_slo_line(line: &str) -> Result<Option<SloDecl>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let [lhs, op, bound, over, window] = tokens.as_slice() else {
        return Err(format!(
            "want `<metric>_p<q> </<= <bound> over <window>`, got {line:?}"
        ));
    };
    if *over != "over" {
        return Err(format!("expected `over`, got {over:?} in {line:?}"));
    }
    let strict = match *op {
        "<" => true,
        "<=" => false,
        other => return Err(format!("unsupported operator {other:?} (want < or <=)")),
    };
    let (metric_part, digits) = lhs
        .rsplit_once("_p")
        .filter(|(m, d)| !m.is_empty() && !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
        .ok_or_else(|| format!("metric {lhs:?} needs a _p50/_p90/_p99/_p999 suffix"))?;
    let quantile = match digits {
        "50" => Quantile::P50,
        "90" => Quantile::P90,
        "99" => Quantile::P99,
        "999" => Quantile::P999,
        other => {
            return Err(format!(
                "unsupported quantile p{other} (histograms answer p50/p90/p99/p999)"
            ))
        }
    };
    let mut metric = if metric_part.contains('.') {
        metric_part.to_string()
    } else {
        format!("service.{metric_part}")
    };
    if !metric.ends_with("_ns") {
        metric.push_str("_ns");
    }
    Ok(Some(SloDecl {
        text: tokens.join(" "),
        metric,
        quantile,
        strict,
        bound_ns: parse_duration_ns(bound)?,
        window_ns: parse_duration_ns(window)?,
    }))
}

/// Parse a whole SLO file; errors carry 1-based line numbers.
pub fn parse_slo_file(text: &str) -> Result<Vec<SloDecl>, String> {
    let mut decls = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(decl) = parse_slo_line(line).map_err(|e| format!("line {}: {e}", i + 1))? {
            decls.push(decl);
        }
    }
    Ok(decls)
}

/// The outcome of one declaration against one probe.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCheck {
    /// The declaration judged.
    pub decl: SloDecl,
    /// The windowed quantile, or `None` when the window held no samples
    /// (indeterminate — counts as a pass).
    pub observed_ns: Option<u64>,
    /// Samples in the judged window.
    pub samples: u64,
    /// Whether the declaration held (indeterminate counts as a pass).
    pub pass: bool,
    /// Human-readable note for indeterminate/misconfigured checks.
    pub note: Option<String>,
}

/// All checks from one probe.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// One entry per declaration, in file order.
    pub checks: Vec<SloCheck>,
}

impl SloReport {
    /// `true` when every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Render for terminals and CI logs.
    pub fn render(&self) -> String {
        let passed = self.checks.iter().filter(|c| c.pass).count();
        let mut out = format!("SLO check: {passed} of {} pass\n", self.checks.len());
        let width = self
            .checks
            .iter()
            .map(|c| c.decl.text.len())
            .max()
            .unwrap_or(0);
        for c in &self.checks {
            let verdict = if c.pass { "PASS" } else { "FAIL" };
            let _ = write!(out, "  {verdict}  {:<width$}  ", c.decl.text);
            match (&c.observed_ns, &c.note) {
                (Some(obs), _) => {
                    let _ = writeln!(
                        out,
                        "observed {} {} (n={})",
                        c.decl.quantile.label(),
                        fmt_ns(*obs),
                        c.samples
                    );
                }
                (None, Some(note)) => {
                    let _ = writeln!(out, "{note}");
                }
                (None, None) => {
                    let _ = writeln!(out, "no data in window");
                }
            }
        }
        out
    }
}

/// Judge `decls` against one or more registry snapshots (service first,
/// then process-global — first snapshot offering the metric wins).
pub fn evaluate(decls: &[SloDecl], snaps: &[&RegistrySnapshot]) -> SloReport {
    let checks = decls
        .iter()
        .map(|decl| {
            let Some((snap, windows)) = snaps.iter().find_map(|s| {
                s.histogram_windows
                    .iter()
                    .find(|(name, _)| *name == decl.metric)
                    .map(|(_, w)| (*s, w))
            }) else {
                return SloCheck {
                    decl: decl.clone(),
                    observed_ns: None,
                    samples: 0,
                    pass: true,
                    note: Some("no data (metric not yet recorded)".to_string()),
                };
            };
            let Some(idx) = snap.window_ns.iter().position(|&w| w == decl.window_ns) else {
                let offered = snap
                    .window_ns
                    .iter()
                    .map(|&w| fmt_ns(w))
                    .collect::<Vec<_>>()
                    .join(", ");
                return SloCheck {
                    decl: decl.clone(),
                    observed_ns: None,
                    samples: 0,
                    pass: false,
                    note: Some(format!(
                        "window {} not offered (have: {offered})",
                        fmt_ns(decl.window_ns)
                    )),
                };
            };
            let h = &windows[idx];
            if h.count == 0 {
                return SloCheck {
                    decl: decl.clone(),
                    observed_ns: None,
                    samples: 0,
                    pass: true,
                    note: None,
                };
            }
            let observed = decl.quantile.of(h);
            let pass = if decl.strict {
                observed < decl.bound_ns
            } else {
                observed <= decl.bound_ns
            };
            SloCheck {
                decl: decl.clone(),
                observed_ns: Some(observed),
                samples: h.count,
                pass,
                note: None,
            }
        })
        .collect();
    SloReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let d = parse_slo_line("exec_p99 < 250ms over 60s")
            .unwrap()
            .unwrap();
        assert_eq!(d.metric, "service.exec_ns");
        assert_eq!(d.quantile, Quantile::P99);
        assert!(d.strict);
        assert_eq!(d.bound_ns, 250_000_000);
        assert_eq!(d.window_ns, 60_000_000_000);

        let d = parse_slo_line("queue_wait_p999 <= 2s over 10s")
            .unwrap()
            .unwrap();
        assert_eq!(d.metric, "service.queue_wait_ns");
        assert_eq!(d.quantile, Quantile::P999);
        assert!(!d.strict);
        assert_eq!(d.bound_ns, 2_000_000_000);

        // Dotted names are taken as-is (plus the _ns convention).
        let d = parse_slo_line("stage.llm_p90 < 100ms over 10s")
            .unwrap()
            .unwrap();
        assert_eq!(d.metric, "stage.llm_ns");
        let d = parse_slo_line("service.exec_ns_p50 < 1s over 60s")
            .unwrap()
            .unwrap();
        assert_eq!(d.metric, "service.exec_ns");

        assert_eq!(parse_slo_line("").unwrap(), None);
        assert_eq!(parse_slo_line("  # a comment").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_declarations() {
        for bad in [
            "exec_p99 < 250ms",           // no window
            "exec_p99 < 250ms over",      // missing window value
            "exec_p95 < 250ms over 60s",  // unsupported quantile
            "exec < 250ms over 60s",      // no quantile suffix
            "exec_p99 > 250ms over 60s",  // unsupported operator
            "exec_p99 < 250 over 60s",    // bound without unit
            "exec_p99 < 250ms above 60s", // not 'over'
            "exec_p99 < 250xs over 60s",  // bad unit
            "_p99 < 1ms over 60s",        // empty metric
        ] {
            assert!(parse_slo_line(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse_slo_file("exec_p99 < 1ms over 60s\nbroken").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    fn snap_with(metric: &str, windows: &[(u64, HistogramSnapshot)]) -> RegistrySnapshot {
        RegistrySnapshot {
            window_ns: windows.iter().map(|(w, _)| *w).collect(),
            histogram_windows: vec![(
                metric.to_string(),
                windows.iter().map(|(_, h)| *h).collect(),
            )],
            ..RegistrySnapshot::default()
        }
    }

    fn hist(count: u64, p99: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            count,
            sum: p99 * count,
            min: p99,
            max: p99,
            p50: p99,
            p90: p99,
            p99,
            p999: p99,
        }
    }

    #[test]
    fn evaluates_pass_fail_and_no_data() {
        let decls = parse_slo_file(
            "# latency floor\nexec_p99 < 250ms over 60s\nexec_p50 <= 100ms over 10s",
        )
        .unwrap();
        let snap = snap_with(
            "service.exec_ns",
            &[
                (10_000_000_000, hist(5, 100_000_000)),
                (60_000_000_000, hist(40, 300_000_000)),
            ],
        );
        let report = evaluate(&decls, &[&snap]);
        assert!(!report.pass());
        assert!(!report.checks[0].pass, "p99 300ms >= bound 250ms");
        assert_eq!(report.checks[0].observed_ns, Some(300_000_000));
        assert_eq!(report.checks[0].samples, 40);
        assert!(report.checks[1].pass, "<= is inclusive");

        // Empty window and absent metric are both indeterminate passes.
        let empty = snap_with("service.exec_ns", &[(60_000_000_000, hist(0, 0))]);
        let decls =
            parse_slo_file("exec_p99 < 1ns over 60s\nqueue_wait_p99 < 1ns over 60s").unwrap();
        let report = evaluate(&decls, &[&empty]);
        assert!(report.pass());
        assert_eq!(report.checks[0].observed_ns, None);
        assert!(report.checks[1]
            .note
            .as_ref()
            .unwrap()
            .contains("not yet recorded"));

        // Asking for a window the registry doesn't offer fails loudly.
        let decls = parse_slo_file("exec_p99 < 1s over 5s").unwrap();
        let report = evaluate(&decls, &[&empty]);
        assert!(!report.pass());
        assert!(report.checks[0]
            .note
            .as_ref()
            .unwrap()
            .contains("not offered"));
    }

    #[test]
    fn first_snapshot_offering_the_metric_wins() {
        let service = snap_with("service.exec_ns", &[(60_000_000_000, hist(3, 50))]);
        let process = snap_with("stage.llm_ns", &[(60_000_000_000, hist(7, 80))]);
        let decls =
            parse_slo_file("exec_p99 < 1ms over 60s\nstage.llm_p99 < 1ms over 60s").unwrap();
        let report = evaluate(&decls, &[&service, &process]);
        assert!(report.pass());
        assert_eq!(report.checks[0].samples, 3);
        assert_eq!(report.checks[1].samples, 7);
    }

    #[test]
    fn render_mentions_every_check() {
        let decls = parse_slo_file("exec_p99 < 250ms over 60s").unwrap();
        let snap = snap_with(
            "service.exec_ns",
            &[(60_000_000_000, hist(12, 400_000_000))],
        );
        let text = evaluate(&decls, &[&snap]).render();
        assert!(text.contains("0 of 1 pass"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("exec_p99 < 250ms over 60s"));
        assert!(text.contains("observed p99 400.00ms (n=12)"));
    }
}
