//! Atomic metrics: counters, gauges, float counters, and log-linear
//! histograms that answer p50/p90/p99/p999 without storing samples.
//!
//! Everything here is lock-free on the record path (one or two atomic
//! RMWs) so instruments can sit inside the per-job hot loop. Reads
//! (snapshots, quantiles) take relaxed loads and tolerate being torn
//! across concurrent writers — they are monitoring data, not ledgers.
//!
//! # Histogram layout
//!
//! Values are bucketed log-linearly: each power of two is split into
//! `SUB_BUCKETS` = 16 linear sub-buckets, so the relative error of any
//! reported quantile is at most 1/16 (≈6.25%). Values below 16 get exact
//! buckets. With 64-bit values that is `16 + 60×16 = 976` buckets of 8
//! bytes — ~8 KiB per histogram, constant regardless of sample count.

use crate::window::{CountWindow, HistWindow, WindowSpec};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Linear sub-buckets per power of two (controls quantile resolution).
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BITS; // 16
/// Exact buckets for values `0..SUB_BUCKETS`, then 16 sub-buckets for
/// each exponent 4..=63.
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS; // 976

/// Monotonically increasing event count, optionally windowed (a
/// windowed counter also lands each increment in a time-slice ring so
/// reads can answer "events in the last W seconds" — the source of
/// rates).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
    window: Option<CountWindow>,
}

impl Counter {
    /// A counter whose increments also feed a slice ring per `spec`.
    pub fn windowed(spec: WindowSpec) -> Counter {
        Counter {
            value: AtomicU64::new(0),
            window: Some(CountWindow::new(spec)),
        }
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` to the lifetime total (and the current window slice).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if let Some(w) = &self.window {
            w.add(n);
        }
    }

    /// Lifetime total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Per-window totals (spec order), or `None` for a lifetime-only
    /// counter.
    pub fn window_totals(&self) -> Option<Vec<u64>> {
        self.window.as_ref().map(CountWindow::totals)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the instantaneous level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment the level (e.g. a worker going busy).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrement the level, saturating at 0.
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            match self.0.compare_exchange_weak(
                cur,
                cur.saturating_sub(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotonically increasing f64 accumulator (e.g. simulated USD cost),
/// stored as bit-cast `f64` behind a CAS loop.
#[derive(Debug)]
pub struct FloatCounter(AtomicU64);

impl Default for FloatCounter {
    fn default() -> Self {
        FloatCounter(AtomicU64::new(0f64.to_bits()))
    }
}

impl FloatCounter {
    /// Add `v` to the accumulator.
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current accumulated value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-footprint log-linear histogram of `u64` samples, optionally
/// windowed (samples also land in a time-slice ring so reads can answer
/// "p99 over the last W seconds").
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    window: Option<Box<HistWindow>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            window: None,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) as usize) - SUB_BUCKETS;
    SUB_BUCKETS + ((exp - SUB_BITS) as usize) * SUB_BUCKETS + sub
}

/// Inclusive upper bound of a bucket — what quantiles report.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let exp = SUB_BITS + ((idx - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((idx - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lo = (1u64 << exp) + sub * width;
    lo + (width - 1)
}

impl Histogram {
    /// A histogram whose samples also feed a slice ring per `spec`.
    pub fn windowed(spec: WindowSpec) -> Histogram {
        Histogram {
            window: Some(Box::new(HistWindow::new(spec))),
            ..Histogram::default()
        }
    }

    /// Record one sample. Two relaxed RMWs plus min/max updates (plus
    /// the same again into the current slice, when windowed).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if let Some(w) = &self.window {
            w.record(v);
        }
    }

    /// Add this histogram's lifetime contents into `dst` — the read path
    /// of ring windows and the way per-service registries roll up into a
    /// fleet view. Concurrent writers may leave `dst` torn by a few
    /// samples (monitoring data, not a ledger). `dst`'s own window ring,
    /// if any, is untouched: merged samples carry no timestamps.
    pub fn merge_into(&self, dst: &Histogram) {
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                dst.buckets[idx].fetch_add(n, Ordering::Relaxed);
            }
        }
        dst.count
            .fetch_add(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.sum
            .fetch_add(self.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        // An empty source has min = u64::MAX and max = 0 — both no-ops.
        dst.min
            .fetch_min(self.min.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.max
            .fetch_max(self.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zero every lifetime cell (ring slices reuse recycled histograms
    /// through this). Not atomic as a whole: concurrent recorders may
    /// land samples mid-reset.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Per-window summaries (spec order), or `None` for a lifetime-only
    /// histogram.
    pub fn window_snapshots(&self) -> Option<Vec<HistogramSnapshot>> {
        self.window.as_ref().map(|w| w.snapshots())
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Lifetime sample count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Lifetime sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `p` in `[0,1]` — an upper bound within
    /// 1/16 relative error of the exact order statistic. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(idx).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time summary (relaxed reads; may be slightly torn under
    /// concurrent writes, which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// Summary view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// 99.9th percentile (bucket upper bound).
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Named instruments, created on first use and shared thereafter.
///
/// Lookups take a read lock once per call site *per acquisition* — call
/// sites are expected to fetch their instrument once (an `Arc`) and hold
/// it, so the registry lock never sits on a hot path.
///
/// A registry built with [`MetricsRegistry::windowed`] creates windowed
/// counters and histograms, and its [`RegistrySnapshot`] additionally
/// carries per-window totals/quantiles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    floats: RwLock<BTreeMap<String, Arc<FloatCounter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    window: Option<WindowSpec>,
}

fn get_or_insert<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(v) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl MetricsRegistry {
    /// A lifetime-only registry (no windows).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry whose counters and histograms also answer windowed
    /// reads per `spec`.
    pub fn windowed(spec: WindowSpec) -> Self {
        MetricsRegistry {
            window: Some(spec),
            ..Self::default()
        }
    }

    /// The windows this registry's instruments offer (empty when
    /// lifetime-only).
    pub fn window_ns(&self) -> Vec<u64> {
        self.window
            .as_ref()
            .map(|s| s.windows_ns().to_vec())
            .unwrap_or_default()
    }

    /// The counter registered as `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, || match &self.window {
            Some(spec) => Counter::windowed(spec.clone()),
            None => Counter::default(),
        })
    }

    /// The float counter registered as `name`, created on first use.
    pub fn float_counter(&self, name: &str) -> Arc<FloatCounter> {
        get_or_insert(&self.floats, name, FloatCounter::default)
    }

    /// The gauge registered as `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::default)
    }

    /// The histogram registered as `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || match &self.window {
            Some(spec) => Histogram::windowed(spec.clone()),
            None => Histogram::default(),
        })
    }

    /// Everything in the registry, summarized, names sorted. Windowed
    /// registries also fill `window_ns` / `counter_windows` /
    /// `histogram_windows` (parallel to `window_ns`, ascending).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            floats: self
                .floats
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            window_ns: self.window_ns(),
            counter_windows: Vec::new(),
            histogram_windows: Vec::new(),
        };
        if self.window.is_some() {
            snap.counter_windows = self
                .counters
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .filter_map(|(k, v)| v.window_totals().map(|t| (k.clone(), t)))
                .collect();
            snap.histogram_windows = self
                .histograms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .filter_map(|(k, v)| v.window_snapshots().map(|s| (k.clone(), s)))
                .collect();
        }
        snap
    }

    /// Add this registry's lifetime values into `dst`: counters and
    /// histograms accumulate ([`Histogram::merge_into`]), float counters
    /// add, gauges last-write-win. Window rings are not merged — merged
    /// samples carry no timestamps — so `dst` answers windowed reads
    /// only for what was recorded against it directly. This is the
    /// fleet-rollup path: several per-service registries folded into one
    /// process view.
    pub fn merge_into(&self, dst: &MetricsRegistry) {
        for (name, c) in self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            dst.counter(name).add(c.get());
        }
        for (name, f) in self.floats.read().unwrap_or_else(|e| e.into_inner()).iter() {
            dst.float_counter(name).add(f.get());
        }
        for (name, g) in self.gauges.read().unwrap_or_else(|e| e.into_inner()).iter() {
            dst.gauge(name).set(g.get());
        }
        for (name, h) in self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            h.merge_into(&dst.histogram(name));
        }
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`].
///
/// For a windowed registry, `window_ns` lists the offered windows
/// (ascending) and `counter_windows` / `histogram_windows` carry one
/// entry per window in that same order. All three are empty for
/// lifetime-only registries.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter lifetime totals, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Float-counter values, name-sorted.
    pub floats: Vec<(String, f64)>,
    /// Gauge levels, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// Lifetime histogram snapshots, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Window lengths (ns) the per-window columns below report over.
    pub window_ns: Vec<u64>,
    /// Per-window counter totals (one entry per `window_ns` column).
    pub counter_windows: Vec<(String, Vec<u64>)>,
    /// Per-window histogram snapshots (one per `window_ns` column).
    pub histogram_windows: Vec<(String, Vec<HistogramSnapshot>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_floats() {
        let r = MetricsRegistry::new();
        let c = r.counter("jobs");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("jobs").get(), 5, "same name, same instrument");
        let g = r.gauge("queue_depth");
        g.set(7);
        g.set(3);
        assert_eq!(r.gauge("queue_depth").get(), 3);
        let f = r.float_counter("cost_usd");
        f.add(0.125);
        f.add(0.25);
        assert!((r.float_counter("cost_usd").get() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn bucket_layout_is_dense_and_monotonic() {
        // Every index maps to an upper bound that round-trips through
        // bucket_index, and upper bounds strictly increase.
        let mut prev = None;
        for idx in 0..BUCKETS {
            let hi = bucket_upper(idx);
            assert_eq!(bucket_index(hi), idx, "upper bound of bucket {idx}");
            if let Some(p) = prev {
                assert!(hi > p, "bucket {idx} upper not increasing");
            }
            prev = Some(hi);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize, "small values are exact");
        }
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let h = Histogram::default();
        let samples: Vec<u64> = (0..10_000u64).map(|i| i * i % 700_001 + 1).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &(p, name) in &[(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999")] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let approx = h.quantile(p);
            assert!(approx >= exact, "{name}: {approx} < exact {exact}");
            assert!(
                approx <= exact + exact / SUB_BUCKETS as u64 + 1,
                "{name}: {approx} overshoots exact {exact}"
            );
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        assert_eq!(snap.sum, samples.iter().sum::<u64>());
        assert_eq!(snap.min, *sorted.first().unwrap());
        assert_eq!(snap.max, *sorted.last().unwrap());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        let snap = h.snapshot();
        assert_eq!(
            (snap.count, snap.sum, snap.min, snap.max, snap.p50, snap.p999),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(snap.mean(), 0);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let h = Histogram::default();
        h.record(1_000_003);
        // One sample: every quantile is that sample, not its bucket's
        // upper bound.
        assert_eq!(h.quantile(0.5), 1_000_003);
        assert_eq!(h.quantile(0.999), 1_000_003);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn merge_into_accumulates_and_reset_clears() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [1u64, 5, 900, 70_000] {
            a.record(v);
        }
        for v in [3u64, 1_000_000] {
            b.record(v);
        }
        let all = Histogram::default();
        a.merge_into(&all);
        b.merge_into(&all);
        let direct = Histogram::default();
        for v in [1u64, 5, 900, 70_000, 3, 1_000_000] {
            direct.record(v);
        }
        assert_eq!(all.snapshot(), direct.snapshot());
        // Merging an empty histogram changes nothing (min/max sentinels
        // must not leak through).
        Histogram::default().merge_into(&all);
        assert_eq!(all.snapshot(), direct.snapshot());
        all.reset();
        assert_eq!(all.snapshot(), Histogram::default().snapshot());
    }

    #[test]
    fn gauge_add_sub_saturates() {
        let g = Gauge::default();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates instead of wrapping");
    }

    #[test]
    fn windowed_registry_snapshot_carries_windows() {
        use crate::clock::VirtualClock;
        let clock = Arc::new(VirtualClock::new());
        let spec = crate::window::WindowSpec::new(
            Arc::clone(&clock) as Arc<dyn crate::clock::Clock>,
            1_000_000_000,
            &[2_000_000_000, 10_000_000_000],
        );
        let r = MetricsRegistry::windowed(spec);
        r.counter("jobs").add(4);
        r.histogram("lat").record(500);
        clock.advance(3_000_000_000);
        r.counter("jobs").inc();
        r.histogram("lat").record(900);
        let snap = r.snapshot();
        assert_eq!(snap.window_ns, vec![2_000_000_000, 10_000_000_000]);
        assert_eq!(
            snap.counter_windows,
            vec![("jobs".to_string(), vec![1, 5])],
            "short window sees the recent inc, long window everything"
        );
        let (name, wins) = &snap.histogram_windows[0];
        assert_eq!(name, "lat");
        assert_eq!((wins[0].count, wins[0].min), (1, 900));
        assert_eq!((wins[1].count, wins[1].min), (2, 500));
        // Lifetime view is unaffected by expiry.
        assert_eq!(snap.histograms[0].1.count, 2);
        // A plain registry reports no windows at all.
        let plain = MetricsRegistry::new().snapshot();
        assert!(plain.window_ns.is_empty());
        assert!(plain.histogram_windows.is_empty());
    }

    #[test]
    fn registry_merge_into_rolls_up_lifetime_values() {
        let svc1 = MetricsRegistry::new();
        let svc2 = MetricsRegistry::new();
        svc1.counter("jobs").add(3);
        svc2.counter("jobs").add(4);
        svc1.float_counter("cost").add(0.5);
        svc2.float_counter("cost").add(0.25);
        svc1.gauge("depth").set(9);
        svc1.histogram("lat").record(100);
        svc2.histogram("lat").record(300);
        let fleet = MetricsRegistry::new();
        svc1.merge_into(&fleet);
        svc2.merge_into(&fleet);
        assert_eq!(fleet.counter("jobs").get(), 7);
        assert!((fleet.float_counter("cost").get() - 0.75).abs() < 1e-12);
        assert_eq!(fleet.gauge("depth").get(), 9);
        let h = fleet.histogram("lat").snapshot();
        assert_eq!((h.count, h.min, h.max), (2, 100, 300));
    }

    #[test]
    fn registry_snapshot_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.histogram("lat").record(10);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }
}
