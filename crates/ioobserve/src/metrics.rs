//! Atomic metrics: counters, gauges, float counters, and log-linear
//! histograms that answer p50/p90/p99/p999 without storing samples.
//!
//! Everything here is lock-free on the record path (one or two atomic
//! RMWs) so instruments can sit inside the per-job hot loop. Reads
//! (snapshots, quantiles) take relaxed loads and tolerate being torn
//! across concurrent writers — they are monitoring data, not ledgers.
//!
//! # Histogram layout
//!
//! Values are bucketed log-linearly: each power of two is split into
//! [`SUB_BUCKETS`] = 16 linear sub-buckets, so the relative error of any
//! reported quantile is at most 1/16 (≈6.25%). Values below 16 get exact
//! buckets. With 64-bit values that is `16 + 60×16 = 976` buckets of 8
//! bytes — ~8 KiB per histogram, constant regardless of sample count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Linear sub-buckets per power of two (controls quantile resolution).
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BITS; // 16
/// Exact buckets for values `0..SUB_BUCKETS`, then 16 sub-buckets for
/// each exponent 4..=63.
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS; // 976

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotonically increasing f64 accumulator (e.g. simulated USD cost),
/// stored as bit-cast `f64` behind a CAS loop.
#[derive(Debug)]
pub struct FloatCounter(AtomicU64);

impl Default for FloatCounter {
    fn default() -> Self {
        FloatCounter(AtomicU64::new(0f64.to_bits()))
    }
}

impl FloatCounter {
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-footprint log-linear histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) as usize) - SUB_BUCKETS;
    SUB_BUCKETS + ((exp - SUB_BITS) as usize) * SUB_BUCKETS + sub
}

/// Inclusive upper bound of a bucket — what quantiles report.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let exp = SUB_BITS + ((idx - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((idx - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lo = (1u64 << exp) + sub * width;
    lo + (width - 1)
}

impl Histogram {
    /// Record one sample. Two relaxed RMWs plus min/max updates.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `p` in `[0,1]` — an upper bound within
    /// 1/16 relative error of the exact order statistic. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(idx).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time summary (relaxed reads; may be slightly torn under
    /// concurrent writes, which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// Summary view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Named instruments, created on first use and shared thereafter.
///
/// Lookups take a read lock once per call site *per acquisition* — call
/// sites are expected to fetch their instrument once (an `Arc`) and hold
/// it, so the registry lock never sits on a hot path.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    floats: RwLock<BTreeMap<String, Arc<FloatCounter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    pub fn float_counter(&self, name: &str) -> Arc<FloatCounter> {
        get_or_insert(&self.floats, name)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Everything in the registry, summarized, names sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            floats: self
                .floats
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub floats: Vec<(String, f64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_floats() {
        let r = MetricsRegistry::new();
        let c = r.counter("jobs");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("jobs").get(), 5, "same name, same instrument");
        let g = r.gauge("queue_depth");
        g.set(7);
        g.set(3);
        assert_eq!(r.gauge("queue_depth").get(), 3);
        let f = r.float_counter("cost_usd");
        f.add(0.125);
        f.add(0.25);
        assert!((r.float_counter("cost_usd").get() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn bucket_layout_is_dense_and_monotonic() {
        // Every index maps to an upper bound that round-trips through
        // bucket_index, and upper bounds strictly increase.
        let mut prev = None;
        for idx in 0..BUCKETS {
            let hi = bucket_upper(idx);
            assert_eq!(bucket_index(hi), idx, "upper bound of bucket {idx}");
            if let Some(p) = prev {
                assert!(hi > p, "bucket {idx} upper not increasing");
            }
            prev = Some(hi);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize, "small values are exact");
        }
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let h = Histogram::default();
        let samples: Vec<u64> = (0..10_000u64).map(|i| i * i % 700_001 + 1).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &(p, name) in &[(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999")] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let approx = h.quantile(p);
            assert!(approx >= exact, "{name}: {approx} < exact {exact}");
            assert!(
                approx <= exact + exact / SUB_BUCKETS as u64 + 1,
                "{name}: {approx} overshoots exact {exact}"
            );
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        assert_eq!(snap.sum, samples.iter().sum::<u64>());
        assert_eq!(snap.min, *sorted.first().unwrap());
        assert_eq!(snap.max, *sorted.last().unwrap());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        let snap = h.snapshot();
        assert_eq!(
            (snap.count, snap.sum, snap.min, snap.max, snap.p50, snap.p999),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(snap.mean(), 0);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let h = Histogram::default();
        h.record(1_000_003);
        // One sample: every quantile is that sample, not its bucket's
        // upper bound.
        assert_eq!(h.quantile(0.5), 1_000_003);
        assert_eq!(h.quantile(0.999), 1_000_003);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn registry_snapshot_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.histogram("lat").record(10);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }
}
