#![warn(missing_docs)]
//! ioobserve — dependency-free observability for the I/O-diagnosis
//! pipeline: structured span tracing, an atomic metrics registry with
//! log-linear histograms, and trace-report folding.
//!
//! Three layers:
//!
//! - [`span`]: [`Tracer`]/[`Span`] write NDJSON span records (id, parent,
//!   name, start/end ns, attrs) through per-thread buffers to a file or
//!   memory sink. Disabled tracers cost one branch per call.
//! - [`mod@metrics`]: [`MetricsRegistry`] of atomic [`Counter`]s, [`Gauge`]s,
//!   [`FloatCounter`]s, and fixed-footprint log-linear [`Histogram`]s
//!   answering p50/p90/p99/p999 without storing samples.
//! - [`report`]: [`fold_spans`] turns a span file into a per-stage
//!   latency attribution table with per-job coverage.
//!
//! # Process-global context
//!
//! Library crates deep in the pipeline (simllm, vecindex, iostore) have
//! no channel to receive a per-service handle, so the crate exposes a
//! process-global [`tracer()`] (set-once via [`init_tracer`], disabled by
//! default) and a process-global [`metrics()`] registry (always on —
//! atomics are cheap). Spans never influence what the pipeline computes,
//! so a global tracer cannot break determinism; the byte-identity test
//! pins that.
//!
//! Services that need isolation (unit tests running several daemons in
//! one process) create their *own* `MetricsRegistry` for service-level
//! counters and only share the global one for per-process stage metrics.

pub mod clock;
pub mod metrics;
pub mod report;
pub mod slo;
pub mod span;
pub mod window;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use metrics::{
    Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use report::{
    fmt_ns, fold_spans, merge_process_spans, render_slowest, slowest_jobs, JobDigest, StageRow,
    TraceReport, JOB_SPAN, STAGE_PREFIX,
};
pub use slo::{evaluate as evaluate_slos, parse_slo_file, SloCheck, SloDecl, SloReport};
pub use span::{parse_spans, Span, SpanRecord, TailRule, TailThreshold, Tracer};
pub use window::WindowSpec;

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, OnceLock};

static CURRENT_TRACER: AtomicPtr<Tracer> = AtomicPtr::new(std::ptr::null_mut());
static DISABLED_TRACER: Tracer = Tracer::disabled();
static GLOBAL_METRICS: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global tracer. Disabled (and free) unless
/// [`init_tracer`] / [`install_tracer`] installed one.
pub fn tracer() -> &'static Tracer {
    let p = CURRENT_TRACER.load(Ordering::Acquire);
    if p.is_null() {
        &DISABLED_TRACER
    } else {
        // SAFETY: the pointer was leaked by init_tracer/install_tracer
        // and is never freed, so it is valid for 'static.
        unsafe { &*p }
    }
}

/// Install the process-global tracer. First call wins; returns `false`
/// (and drops `t`) if one was already installed. Call early — spans
/// opened before this see the disabled tracer.
pub fn init_tracer(t: Tracer) -> bool {
    let boxed = Box::into_raw(Box::new(t));
    match CURRENT_TRACER.compare_exchange(
        std::ptr::null_mut(),
        boxed,
        Ordering::AcqRel,
        Ordering::Acquire,
    ) {
        Ok(_) => true,
        Err(_) => {
            // SAFETY: boxed was just created above and never published.
            drop(unsafe { Box::from_raw(boxed) });
            false
        }
    }
}

/// Replace the process-global tracer unconditionally, returning the new
/// one. The previous tracer (if any) is intentionally **leaked**:
/// `tracer()` hands out `'static` references and spans opened against
/// the old tracer may still be live on other threads. This is a tool for
/// benches and multi-arm tests that measure several tracer modes in one
/// process — services install once via [`init_tracer`].
pub fn install_tracer(t: Tracer) -> &'static Tracer {
    let boxed = Box::into_raw(Box::new(t));
    CURRENT_TRACER.swap(boxed, Ordering::AcqRel);
    // SAFETY: boxed is leaked (never freed), so the reference is 'static.
    unsafe { &*boxed }
}

/// The process-global metrics registry (always available). Windowed
/// with the standard spec — 2.5 s slices, last-10s/last-60s windows on a
/// monotonic clock anchored at first use — so stage histograms recorded
/// deep in the pipeline answer "right now" questions, not just lifetime
/// ones.
pub fn metrics() -> &'static MetricsRegistry {
    GLOBAL_METRICS.get_or_init(|| {
        MetricsRegistry::windowed(WindowSpec::standard(Arc::new(MonotonicClock::new())))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_tracer_defaults_to_disabled() {
        // Note: init_tracer is set-once per process, so this test (and
        // the whole crate) never installs one — other tests construct
        // their own Tracer values directly.
        assert!(!tracer().enabled());
        assert_eq!(tracer().span("x").id(), 0);
    }

    #[test]
    fn global_metrics_registry_is_shared() {
        metrics().counter("lib_test_counter").add(3);
        metrics().counter("lib_test_counter").inc();
        assert_eq!(metrics().counter("lib_test_counter").get(), 4);
    }
}
