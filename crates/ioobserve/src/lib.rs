//! ioobserve — dependency-free observability for the I/O-diagnosis
//! pipeline: structured span tracing, an atomic metrics registry with
//! log-linear histograms, and trace-report folding.
//!
//! Three layers:
//!
//! - [`span`]: [`Tracer`]/[`Span`] write NDJSON span records (id, parent,
//!   name, start/end ns, attrs) through per-thread buffers to a file or
//!   memory sink. Disabled tracers cost one branch per call.
//! - [`metrics`]: [`MetricsRegistry`] of atomic [`Counter`]s, [`Gauge`]s,
//!   [`FloatCounter`]s, and fixed-footprint log-linear [`Histogram`]s
//!   answering p50/p90/p99/p999 without storing samples.
//! - [`report`]: [`fold_spans`] turns a span file into a per-stage
//!   latency attribution table with per-job coverage.
//!
//! # Process-global context
//!
//! Library crates deep in the pipeline (simllm, vecindex, iostore) have
//! no channel to receive a per-service handle, so the crate exposes a
//! process-global [`tracer()`] (set-once via [`init_tracer`], disabled by
//! default) and a process-global [`metrics()`] registry (always on —
//! atomics are cheap). Spans never influence what the pipeline computes,
//! so a global tracer cannot break determinism; the byte-identity test
//! pins that.
//!
//! Services that need isolation (unit tests running several daemons in
//! one process) create their *own* `MetricsRegistry` for service-level
//! counters and only share the global one for per-process stage metrics.

pub mod clock;
pub mod metrics;
pub mod report;
pub mod span;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use metrics::{
    Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use report::{fold_spans, StageRow, TraceReport, JOB_SPAN, STAGE_PREFIX};
pub use span::{parse_spans, Span, SpanRecord, Tracer};

use std::sync::OnceLock;

static GLOBAL_TRACER: OnceLock<Tracer> = OnceLock::new();
static DISABLED_TRACER: Tracer = Tracer::disabled();
static GLOBAL_METRICS: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global tracer. Disabled (and free) unless
/// [`init_tracer`] installed one.
pub fn tracer() -> &'static Tracer {
    GLOBAL_TRACER.get().unwrap_or(&DISABLED_TRACER)
}

/// Install the process-global tracer. First call wins; returns `false`
/// (and drops `t`) if one was already installed. Call early — spans
/// opened before this see the disabled tracer.
pub fn init_tracer(t: Tracer) -> bool {
    GLOBAL_TRACER.set(t).is_ok()
}

/// The process-global metrics registry (always available).
pub fn metrics() -> &'static MetricsRegistry {
    GLOBAL_METRICS.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_tracer_defaults_to_disabled() {
        // Note: init_tracer is set-once per process, so this test (and
        // the whole crate) never installs one — other tests construct
        // their own Tracer values directly.
        assert!(!tracer().enabled());
        assert_eq!(tracer().span("x").id(), 0);
    }

    #[test]
    fn global_metrics_registry_is_shared() {
        metrics().counter("lib_test_counter").add(3);
        metrics().counter("lib_test_counter").inc();
        assert_eq!(metrics().counter("lib_test_counter").get(), 4);
    }
}
