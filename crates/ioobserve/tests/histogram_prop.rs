//! Property test: log-linear histogram quantiles vs. an exact-sort
//! oracle. For any sample set and quantile, the histogram must report a
//! value that is (a) >= the exact order statistic and (b) within the
//! structural relative-error bound of 1/16 (16 linear sub-buckets per
//! power of two), never exceeding the observed max.

use ioobserve::Histogram;
use proptest::collection;
use proptest::prelude::*;

fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn quantiles_match_exact_sort_oracle(
        samples in collection::vec(0u64..5_000_000_000, 1..400),
        p in 0.001f64..1.0,
    ) {
        let h = Histogram::default();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for &q in &[p, 0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, q);
            let approx = h.quantile(q);
            prop_assert!(
                approx >= exact,
                "q={q}: histogram {approx} below exact {exact} (samples={samples:?})"
            );
            prop_assert!(
                approx <= exact + exact / 16 + 1,
                "q={q}: histogram {approx} beyond error bound of exact {exact}"
            );
            prop_assert!(
                approx <= *sorted.last().unwrap(),
                "q={q}: histogram {approx} exceeds observed max"
            );
        }

        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *sorted.first().unwrap());
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
    }

    /// Partitioning a sample stream into arbitrary slices, recording
    /// each slice into its own histogram, and merging them must be
    /// indistinguishable from one histogram fed every sample — the
    /// invariant the ring-window read path rests on.
    #[test]
    fn merging_slices_equals_one_histogram(
        samples in collection::vec(0u64..5_000_000_000, 1..400),
        cuts in collection::vec(0usize..400, 0..8),
    ) {
        let whole = Histogram::default();
        for &s in &samples {
            whole.record(s);
        }

        // Split at the (sorted, clamped) cut points.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (samples.len() + 1)).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();
        bounds.dedup();
        let merged = Histogram::default();
        for pair in bounds.windows(2) {
            let slice_hist = Histogram::default();
            for &s in &samples[pair[0]..pair[1]] {
                slice_hist.record(s);
            }
            slice_hist.merge_into(&merged);
        }

        prop_assert_eq!(merged.snapshot(), whole.snapshot());
        for &q in &[0.001, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q), "q={}", q);
        }
    }
}
