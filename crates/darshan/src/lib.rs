//! In-memory model, parser, and writer for Darshan I/O trace logs.
//!
//! Darshan is the de-facto standard lightweight I/O characterisation tool on
//! HPC systems. It records, per file and per instrumented interface
//! ("module"), a fixed set of integer and floating-point counters describing
//! the application's I/O behaviour: data volumes, operation counts, access
//! size histograms, alignment, sequentiality, timing, and rank variance, plus
//! Lustre striping information.
//!
//! This crate models the *parsed* representation of a Darshan log, i.e. the
//! text format produced by `darshan-parser`, which is what downstream tools
//! (IOAgent, Drishti, PyDarshan, ...) consume:
//!
//! ```text
//! # darshan log version: 3.41
//! # exe: ./app
//! # nprocs: 8
//! # run time: 722.00
//! ...
//! POSIX   -1  10001  POSIX_OPENS          16   /scratch/out  /scratch  lustre
//! POSIX   -1  10001  POSIX_F_READ_TIME  1.25   /scratch/out  /scratch  lustre
//! ```
//!
//! The crate provides:
//! - [`DarshanTrace`]: the full log (header + per-file records),
//! - [`Record`]: one (module, rank, file) counter set,
//! - [`parse::parse_text`] / [`write::write_text`]: a faithful round-trip of
//!   the `darshan-parser` text format,
//! - [`mod@derive`]: derived per-module aggregates (histograms, alignment
//!   fractions, sequentiality, rank balance, ...) used by every diagnosis
//!   tool in the workspace.

pub mod counters;
pub mod derive;
pub mod dxt;
pub mod error;
pub mod parse;
pub mod record;
pub mod trace;
pub mod write;

pub use counters::{Module, SIZE_BINS};
pub use derive::{LustreSummary, ModuleAgg, TraceSummary};
pub use dxt::{DxtEvent, DxtOp, DxtTrace};
pub use error::DarshanError;
pub use record::Record;
pub use trace::{DarshanTrace, JobHeader, Mount};

#[cfg(test)]
mod round_trip_tests {
    use super::*;

    #[test]
    fn empty_trace_round_trips() {
        let trace = DarshanTrace::new(JobHeader::default());
        let text = write::write_text(&trace);
        let back = parse::parse_text(&text).expect("parse");
        assert_eq!(back.records.len(), 0);
        assert_eq!(back.header.nprocs, trace.header.nprocs);
    }
}
