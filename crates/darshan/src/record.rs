//! Per-file counter records.

use crate::counters::{is_float_counter, Module};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One Darshan record: the counter set collected for a single file by a
/// single module, attributed either to one MPI rank or (rank `-1`) shared
/// across all ranks that accessed the file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Which instrumentation module produced this record.
    pub module: Module,
    /// MPI rank the record belongs to; `-1` means the file was accessed by
    /// multiple ranks and counters were aggregated into a shared record.
    pub rank: i64,
    /// Darshan's hashed record identifier for the file path.
    pub record_id: u64,
    /// Absolute path of the file.
    pub file: String,
    /// Mount point under which the file lives.
    pub mount: String,
    /// File-system type (e.g. `lustre`, `gpfs`, `tmpfs`).
    pub fs: String,
    /// Integer counters, keyed by canonical counter name.
    pub icounters: BTreeMap<String, i64>,
    /// Floating-point counters, keyed by canonical counter name.
    pub fcounters: BTreeMap<String, f64>,
}

impl Record {
    /// Create an empty record for `file` under `module`.
    pub fn new(module: Module, rank: i64, record_id: u64, file: impl Into<String>) -> Self {
        Record {
            module,
            rank,
            record_id,
            file: file.into(),
            mount: "/".to_string(),
            fs: "unknown".to_string(),
            icounters: BTreeMap::new(),
            fcounters: BTreeMap::new(),
        }
    }

    /// Builder-style mount/fs assignment.
    pub fn with_mount(mut self, mount: impl Into<String>, fs: impl Into<String>) -> Self {
        self.mount = mount.into();
        self.fs = fs.into();
        self
    }

    /// Read an integer counter; missing counters read as 0 (Darshan's
    /// convention for "not observed" in most counters).
    pub fn ic(&self, name: &str) -> i64 {
        self.icounters.get(name).copied().unwrap_or(0)
    }

    /// Read a floating-point counter; missing counters read as 0.0.
    pub fn fc(&self, name: &str) -> f64 {
        self.fcounters.get(name).copied().unwrap_or(0.0)
    }

    /// Set a counter, dispatching on Darshan's `_F_` float-name convention.
    pub fn set(&mut self, name: &str, value: f64) {
        if is_float_counter(name) {
            self.fcounters.insert(name.to_string(), value);
        } else {
            self.icounters.insert(name.to_string(), value as i64);
        }
    }

    /// Set an integer counter explicitly.
    pub fn set_ic(&mut self, name: &str, value: i64) {
        debug_assert!(!is_float_counter(name), "float counter {name} set as int");
        self.icounters.insert(name.to_string(), value);
    }

    /// Set a floating-point counter explicitly.
    pub fn set_fc(&mut self, name: &str, value: f64) {
        debug_assert!(is_float_counter(name), "int counter {name} set as float");
        self.fcounters.insert(name.to_string(), value);
    }

    /// Add to an integer counter (creating it at 0 if absent).
    pub fn add_ic(&mut self, name: &str, delta: i64) {
        *self.icounters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Add to a floating-point counter (creating it at 0.0 if absent).
    pub fn add_fc(&mut self, name: &str, delta: f64) {
        *self.fcounters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Whether this record is shared across ranks.
    pub fn is_shared(&self) -> bool {
        self.rank < 0
    }

    /// Total counter entries (integer + float) in the record.
    pub fn len(&self) -> usize {
        self.icounters.len() + self.fcounters.len()
    }

    /// Whether the record carries no counters at all.
    pub fn is_empty(&self) -> bool {
        self.icounters.is_empty() && self.fcounters.is_empty()
    }

    /// Sum of a family of integer counters sharing a prefix, e.g. the ten
    /// size-histogram bins `POSIX_SIZE_READ_*`.
    pub fn ic_prefix_sum(&self, prefix: &str) -> i64 {
        self.icounters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        let mut r =
            Record::new(Module::Posix, -1, 42, "/scratch/out.dat").with_mount("/scratch", "lustre");
        r.set_ic("POSIX_READS", 10);
        r.set_ic("POSIX_WRITES", 20);
        r.set_fc("POSIX_F_READ_TIME", 1.5);
        r
    }

    #[test]
    fn counter_access_defaults_to_zero() {
        let r = sample();
        assert_eq!(r.ic("POSIX_SEEKS"), 0);
        assert_eq!(r.fc("POSIX_F_WRITE_TIME"), 0.0);
        assert_eq!(r.ic("POSIX_READS"), 10);
        assert!((r.fc("POSIX_F_READ_TIME") - 1.5).abs() < 1e-12);
    }

    #[test]
    fn set_dispatches_on_name_convention() {
        let mut r = Record::new(Module::Posix, 0, 1, "/x");
        r.set("POSIX_OPENS", 3.0);
        r.set("POSIX_F_META_TIME", 0.25);
        assert_eq!(r.ic("POSIX_OPENS"), 3);
        assert!((r.fc("POSIX_F_META_TIME") - 0.25).abs() < 1e-12);
        assert_eq!(r.icounters.len(), 1);
        assert_eq!(r.fcounters.len(), 1);
    }

    #[test]
    fn add_accumulates() {
        let mut r = Record::new(Module::Stdio, 2, 7, "/y");
        r.add_ic("STDIO_WRITES", 5);
        r.add_ic("STDIO_WRITES", 7);
        r.add_fc("STDIO_F_WRITE_TIME", 0.5);
        r.add_fc("STDIO_F_WRITE_TIME", 0.25);
        assert_eq!(r.ic("STDIO_WRITES"), 12);
        assert!((r.fc("STDIO_F_WRITE_TIME") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_flag() {
        assert!(sample().is_shared());
        assert!(!Record::new(Module::Posix, 0, 1, "/x").is_shared());
    }

    #[test]
    fn prefix_sum_sums_histogram() {
        let mut r = Record::new(Module::Posix, -1, 1, "/x");
        r.set_ic("POSIX_SIZE_READ_0_100", 5);
        r.set_ic("POSIX_SIZE_READ_100_1K", 7);
        r.set_ic("POSIX_SIZE_WRITE_0_100", 100); // different family
        assert_eq!(r.ic_prefix_sum("POSIX_SIZE_READ_"), 12);
    }

    #[test]
    fn len_and_empty() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(Record::new(Module::Lustre, -1, 0, "/z").is_empty());
    }
}
