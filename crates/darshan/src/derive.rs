//! Derived per-module aggregates.
//!
//! Every diagnosis tool in this workspace (IOAgent's pre-processor,
//! Drishti's triggers, ION's prompt builder, and the TraceBench
//! self-checks) reasons over the same derived quantities: operation totals,
//! access-size histograms, alignment and sequentiality fractions, timing
//! splits, and rank/server balance. Centralising them here keeps the tools'
//! *interpretation* different (which is the point of the paper) while the
//! *arithmetic* stays consistent and tested once.

use crate::counters::{Module, SIZE_BINS};
use crate::record::Record;
use crate::trace::DarshanTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate view over all records of one module in a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModuleAgg {
    /// Number of distinct files the module touched.
    pub files: usize,
    /// Number of shared (rank −1) records.
    pub shared_files: usize,
    /// Open operations (POSIX_OPENS / MPIIO_*_OPENS / STDIO_OPENS).
    pub opens: i64,
    /// Read operations.
    pub reads: i64,
    /// Write operations.
    pub writes: i64,
    /// Seek operations (POSIX/STDIO only).
    pub seeks: i64,
    /// stat()-family operations (POSIX only).
    pub stats: i64,
    /// fsync/fdatasync operations (POSIX only), MPIIO_SYNCS for MPI-IO.
    pub syncs: i64,
    /// Bytes read.
    pub bytes_read: i64,
    /// Bytes written.
    pub bytes_written: i64,
    /// Largest offset read (max over files of MAX_BYTE_READ).
    pub max_byte_read: i64,
    /// Largest offset written.
    pub max_byte_written: i64,
    /// Size of the slowest read operation (`*_MAX_READ_TIME_SIZE`); in
    /// practice the size of a typical worst-case read request, used to judge
    /// per-direction alignment.
    pub max_read_time_size: i64,
    /// Size of the slowest write operation.
    pub max_write_time_size: i64,
    /// Read access-size histogram over [`SIZE_BINS`].
    pub read_hist: [i64; 10],
    /// Write access-size histogram over [`SIZE_BINS`].
    pub write_hist: [i64; 10],
    /// Sequential (offset strictly increasing) reads / writes.
    pub seq_reads: i64,
    /// Sequential writes.
    pub seq_writes: i64,
    /// Consecutive (offset exactly following) reads.
    pub consec_reads: i64,
    /// Consecutive writes.
    pub consec_writes: i64,
    /// Read↔write switches.
    pub rw_switches: i64,
    /// Accesses not aligned with the file-system block/stripe boundary.
    pub file_not_aligned: i64,
    /// Accesses not aligned in memory.
    pub mem_not_aligned: i64,
    /// File alignment value reported by Darshan (bytes; 0 if absent).
    pub file_alignment: i64,
    /// Aggregate time spent in reads (seconds, summed over ranks).
    pub read_time: f64,
    /// Aggregate time spent in writes.
    pub write_time: f64,
    /// Aggregate time spent in metadata operations.
    pub meta_time: f64,
    /// Max across shared files of the variance of per-rank bytes.
    pub variance_rank_bytes: f64,
    /// Max across shared files of the variance of per-rank time.
    pub variance_rank_time: f64,
    /// Bytes moved by the fastest rank (shared files).
    pub fastest_rank_bytes: i64,
    /// Bytes moved by the slowest rank (shared files).
    pub slowest_rank_bytes: i64,
    /// MPI-IO independent opens.
    pub indep_opens: i64,
    /// MPI-IO collective opens.
    pub coll_opens: i64,
    /// MPI-IO independent reads.
    pub indep_reads: i64,
    /// MPI-IO independent writes.
    pub indep_writes: i64,
    /// MPI-IO collective reads.
    pub coll_reads: i64,
    /// MPI-IO collective writes.
    pub coll_writes: i64,
}

impl ModuleAgg {
    /// reads + writes.
    pub fn total_ops(&self) -> i64 {
        self.reads + self.writes
    }

    /// Fraction of read operations strictly below 1 MB (histogram bins
    /// `0_100 .. 100K_1M`). Returns 0 when there are no reads.
    pub fn small_read_fraction(&self) -> f64 {
        fraction(self.read_hist[..5].iter().sum::<i64>(), self.reads)
    }

    /// Fraction of write operations strictly below 1 MB.
    pub fn small_write_fraction(&self) -> f64 {
        fraction(self.write_hist[..5].iter().sum::<i64>(), self.writes)
    }

    /// Fraction of all operations not aligned with the file system.
    pub fn misaligned_fraction(&self) -> f64 {
        fraction(self.file_not_aligned, self.total_ops())
    }

    /// Fraction of reads that were sequential.
    pub fn seq_read_fraction(&self) -> f64 {
        fraction(self.seq_reads, self.reads)
    }

    /// Fraction of writes that were sequential.
    pub fn seq_write_fraction(&self) -> f64 {
        fraction(self.seq_writes, self.writes)
    }

    /// Metadata time as a fraction of total job runtime × ranks.
    ///
    /// Darshan's `F_META_TIME` is summed over ranks, so the natural
    /// denominator is `run_time * nprocs`.
    pub fn meta_time_fraction(&self, run_time: f64, nprocs: u64) -> f64 {
        if run_time <= 0.0 || nprocs == 0 {
            return 0.0;
        }
        (self.meta_time / (run_time * nprocs as f64)).clamp(0.0, 1.0)
    }

    /// Ratio slowest/fastest rank bytes for shared files (1.0 = balanced).
    /// Returns 1.0 when either side is unknown.
    pub fn rank_byte_imbalance(&self) -> f64 {
        if self.fastest_rank_bytes <= 0 || self.slowest_rank_bytes <= 0 {
            return 1.0;
        }
        self.fastest_rank_bytes as f64 / self.slowest_rank_bytes as f64
    }

    /// Bytes re-read factor: how many times over the touched byte range the
    /// module read. > 1.0 indicates repeated reads of the same data.
    pub fn read_reuse_factor(&self) -> f64 {
        if self.max_byte_read <= 0 {
            return if self.bytes_read > 0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.bytes_read as f64 / (self.max_byte_read as f64 + 1.0)
    }

    /// Fraction of MPI-IO reads that were collective.
    pub fn collective_read_fraction(&self) -> f64 {
        fraction(self.coll_reads, self.coll_reads + self.indep_reads)
    }

    /// Fraction of MPI-IO writes that were collective.
    pub fn collective_write_fraction(&self) -> f64 {
        fraction(self.coll_writes, self.coll_writes + self.indep_writes)
    }

    /// Human-readable histogram rendering used by prompt builders, e.g.
    /// `{"0-100": 0.75, "100-1K": 0.25}` keyed by bin label with fractions.
    pub fn hist_fractions(&self, write: bool) -> BTreeMap<&'static str, f64> {
        let (hist, total) = if write {
            (&self.write_hist, self.writes)
        } else {
            (&self.read_hist, self.reads)
        };
        let mut out = BTreeMap::new();
        if total <= 0 {
            return out;
        }
        for (i, &count) in hist.iter().enumerate() {
            if count > 0 {
                out.insert(SIZE_BINS[i], count as f64 / total as f64);
            }
        }
        out
    }
}

fn fraction(num: i64, den: i64) -> f64 {
    if den <= 0 {
        0.0
    } else {
        (num as f64 / den as f64).clamp(0.0, 1.0)
    }
}

/// Aggregate a module's records.
pub fn aggregate(trace: &DarshanTrace, module: Module) -> Option<ModuleAgg> {
    let records: Vec<&Record> = trace.records_for(module).collect();
    if records.is_empty() {
        return None;
    }
    let p = module.prefix();
    let mut agg = ModuleAgg {
        files: trace.files_for(module).len(),
        shared_files: records.iter().filter(|r| r.is_shared()).count(),
        ..ModuleAgg::default()
    };
    for r in &records {
        match module {
            Module::Posix => {
                agg.opens += r.ic("POSIX_OPENS");
                agg.reads += r.ic("POSIX_READS");
                agg.writes += r.ic("POSIX_WRITES");
                agg.seeks += r.ic("POSIX_SEEKS");
                agg.stats += r.ic("POSIX_STATS");
                agg.syncs += r.ic("POSIX_FSYNCS") + r.ic("POSIX_FDSYNCS");
            }
            Module::Mpiio => {
                agg.indep_opens += r.ic("MPIIO_INDEP_OPENS");
                agg.coll_opens += r.ic("MPIIO_COLL_OPENS");
                agg.indep_reads += r.ic("MPIIO_INDEP_READS");
                agg.indep_writes += r.ic("MPIIO_INDEP_WRITES");
                agg.coll_reads += r.ic("MPIIO_COLL_READS");
                agg.coll_writes += r.ic("MPIIO_COLL_WRITES");
                agg.opens += r.ic("MPIIO_INDEP_OPENS") + r.ic("MPIIO_COLL_OPENS");
                agg.reads += r.ic("MPIIO_INDEP_READS")
                    + r.ic("MPIIO_COLL_READS")
                    + r.ic("MPIIO_SPLIT_READS")
                    + r.ic("MPIIO_NB_READS");
                agg.writes += r.ic("MPIIO_INDEP_WRITES")
                    + r.ic("MPIIO_COLL_WRITES")
                    + r.ic("MPIIO_SPLIT_WRITES")
                    + r.ic("MPIIO_NB_WRITES");
                agg.syncs += r.ic("MPIIO_SYNCS");
            }
            Module::Stdio => {
                agg.opens += r.ic("STDIO_OPENS") + r.ic("STDIO_FDOPENS");
                agg.reads += r.ic("STDIO_READS");
                agg.writes += r.ic("STDIO_WRITES");
                agg.seeks += r.ic("STDIO_SEEKS");
            }
            Module::Lustre => {}
        }
        agg.bytes_read += r.ic(&format!("{p}_BYTES_READ"));
        agg.bytes_written += r.ic(&format!("{p}_BYTES_WRITTEN"));
        agg.max_byte_read = agg.max_byte_read.max(r.ic(&format!("{p}_MAX_BYTE_READ")));
        agg.max_byte_written = agg
            .max_byte_written
            .max(r.ic(&format!("{p}_MAX_BYTE_WRITTEN")));
        agg.max_read_time_size = agg
            .max_read_time_size
            .max(r.ic(&format!("{p}_MAX_READ_TIME_SIZE")));
        agg.max_write_time_size = agg
            .max_write_time_size
            .max(r.ic(&format!("{p}_MAX_WRITE_TIME_SIZE")));
        agg.seq_reads += r.ic(&format!("{p}_SEQ_READS"));
        agg.seq_writes += r.ic(&format!("{p}_SEQ_WRITES"));
        agg.consec_reads += r.ic(&format!("{p}_CONSEC_READS"));
        agg.consec_writes += r.ic(&format!("{p}_CONSEC_WRITES"));
        agg.rw_switches += r.ic(&format!("{p}_RW_SWITCHES"));
        agg.file_not_aligned += r.ic(&format!("{p}_FILE_NOT_ALIGNED"));
        agg.mem_not_aligned += r.ic(&format!("{p}_MEM_NOT_ALIGNED"));
        agg.file_alignment = agg.file_alignment.max(r.ic(&format!("{p}_FILE_ALIGNMENT")));
        agg.read_time += r.fc(&format!("{p}_F_READ_TIME"));
        agg.write_time += r.fc(&format!("{p}_F_WRITE_TIME"));
        agg.meta_time += r.fc(&format!("{p}_F_META_TIME"));
        agg.variance_rank_bytes = agg
            .variance_rank_bytes
            .max(r.fc(&format!("{p}_F_VARIANCE_RANK_BYTES")));
        agg.variance_rank_time = agg
            .variance_rank_time
            .max(r.fc(&format!("{p}_F_VARIANCE_RANK_TIME")));
        agg.fastest_rank_bytes += r.ic(&format!("{p}_FASTEST_RANK_BYTES"));
        agg.slowest_rank_bytes += r.ic(&format!("{p}_SLOWEST_RANK_BYTES"));
        let hist_read_prefix = match module {
            Module::Mpiio => "MPIIO_SIZE_READ_AGG_".to_string(),
            _ => format!("{p}_SIZE_READ_"),
        };
        let hist_write_prefix = match module {
            Module::Mpiio => "MPIIO_SIZE_WRITE_AGG_".to_string(),
            _ => format!("{p}_SIZE_WRITE_"),
        };
        for (i, bin) in SIZE_BINS.iter().enumerate() {
            agg.read_hist[i] += r.ic(&format!("{hist_read_prefix}{bin}"));
            agg.write_hist[i] += r.ic(&format!("{hist_write_prefix}{bin}"));
        }
    }
    Some(agg)
}

/// Summary of Lustre striping across files in a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LustreSummary {
    /// Number of files with Lustre records.
    pub files: usize,
    /// Total number of OSTs in the file system (max of LUSTRE_OSTS).
    pub total_osts: i64,
    /// Total number of MDTs.
    pub total_mdts: i64,
    /// Stripe width (count) per file.
    pub stripe_widths: Vec<i64>,
    /// Stripe size (bytes) per file.
    pub stripe_sizes: Vec<i64>,
    /// Distinct OST ids actually used by the job.
    pub distinct_osts_used: usize,
    /// How many files use each OST id.
    pub ost_usage: BTreeMap<i64, usize>,
}

impl LustreSummary {
    /// Mean stripe width across files (0 when no files).
    pub fn mean_stripe_width(&self) -> f64 {
        if self.stripe_widths.is_empty() {
            0.0
        } else {
            self.stripe_widths.iter().sum::<i64>() as f64 / self.stripe_widths.len() as f64
        }
    }

    /// Fraction of the file system's OSTs the job touched (0..1).
    pub fn ost_utilisation(&self) -> f64 {
        if self.total_osts <= 0 {
            0.0
        } else {
            (self.distinct_osts_used as f64 / self.total_osts as f64).clamp(0.0, 1.0)
        }
    }

    /// Coefficient of variation of per-OST file counts; high values mean a
    /// few OSTs service most of the traffic.
    pub fn ost_usage_cv(&self) -> f64 {
        if self.ost_usage.is_empty() {
            return 0.0;
        }
        let counts: Vec<f64> = self.ost_usage.values().map(|&c| c as f64).collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        var.sqrt() / mean
    }
}

/// Aggregate the LUSTRE module records.
pub fn lustre_summary(trace: &DarshanTrace) -> Option<LustreSummary> {
    let records: Vec<&Record> = trace.records_for(Module::Lustre).collect();
    if records.is_empty() {
        return None;
    }
    let mut s = LustreSummary {
        files: records.len(),
        ..LustreSummary::default()
    };
    for r in &records {
        s.total_osts = s.total_osts.max(r.ic("LUSTRE_OSTS"));
        s.total_mdts = s.total_mdts.max(r.ic("LUSTRE_MDTS"));
        s.stripe_widths.push(r.ic("LUSTRE_STRIPE_WIDTH"));
        s.stripe_sizes.push(r.ic("LUSTRE_STRIPE_SIZE"));
        for (name, value) in &r.icounters {
            if name.starts_with("LUSTRE_OST_ID_") {
                *s.ost_usage.entry(*value).or_insert(0) += 1;
            }
        }
    }
    s.distinct_osts_used = s.ost_usage.len();
    Some(s)
}

/// Whole-trace summary combining the per-module aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of MPI processes.
    pub nprocs: u64,
    /// Job runtime in seconds.
    pub run_time: f64,
    /// POSIX aggregate, if the module is present.
    pub posix: Option<ModuleAgg>,
    /// MPI-IO aggregate.
    pub mpiio: Option<ModuleAgg>,
    /// STDIO aggregate.
    pub stdio: Option<ModuleAgg>,
    /// Lustre striping summary.
    pub lustre: Option<LustreSummary>,
}

impl TraceSummary {
    /// Build the summary for a trace.
    pub fn of(trace: &DarshanTrace) -> Self {
        TraceSummary {
            nprocs: trace.header.nprocs,
            run_time: trace.header.run_time,
            posix: aggregate(trace, Module::Posix),
            mpiio: aggregate(trace, Module::Mpiio),
            stdio: aggregate(trace, Module::Stdio),
            lustre: lustre_summary(trace),
        }
    }

    /// Total bytes through POSIX + STDIO (MPI-IO excluded: double counting).
    pub fn total_bytes(&self) -> i64 {
        let p = self
            .posix
            .as_ref()
            .map(|a| a.bytes_read + a.bytes_written)
            .unwrap_or(0);
        let s = self
            .stdio
            .as_ref()
            .map(|a| a.bytes_read + a.bytes_written)
            .unwrap_or(0);
        p + s
    }

    /// Fraction of bytes moved through STDIO rather than POSIX/MPI-IO.
    pub fn stdio_byte_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total <= 0 {
            return 0.0;
        }
        let s = self
            .stdio
            .as_ref()
            .map(|a| a.bytes_read + a.bytes_written)
            .unwrap_or(0);
        (s as f64 / total as f64).clamp(0.0, 1.0)
    }

    /// Fraction of STDIO read bytes out of all read bytes.
    pub fn stdio_read_fraction(&self) -> f64 {
        let p = self.posix.as_ref().map(|a| a.bytes_read).unwrap_or(0);
        let s = self.stdio.as_ref().map(|a| a.bytes_read).unwrap_or(0);
        if p + s <= 0 {
            return 0.0;
        }
        s as f64 / (p + s) as f64
    }

    /// Fraction of STDIO write bytes out of all write bytes.
    pub fn stdio_write_fraction(&self) -> f64 {
        let p = self.posix.as_ref().map(|a| a.bytes_written).unwrap_or(0);
        let s = self.stdio.as_ref().map(|a| a.bytes_written).unwrap_or(0);
        if p + s <= 0 {
            return 0.0;
        }
        s as f64 / (p + s) as f64
    }

    /// Whether the job performs multi-process I/O without any MPI-IO usage.
    pub fn multi_process_without_mpi(&self) -> bool {
        self.nprocs > 1 && self.mpiio.is_none() && self.posix.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::JobHeader;

    fn trace() -> DarshanTrace {
        let mut t = DarshanTrace::new(JobHeader::new("./app", 8, 100.0));
        let mut p = Record::new(Module::Posix, -1, 1, "/scratch/a");
        p.set_ic("POSIX_READS", 100);
        p.set_ic("POSIX_WRITES", 200);
        p.set_ic("POSIX_SIZE_READ_0_100", 80);
        p.set_ic("POSIX_SIZE_READ_1M_4M", 20);
        p.set_ic("POSIX_SIZE_WRITE_1M_4M", 200);
        p.set_ic("POSIX_SEQ_READS", 90);
        p.set_ic("POSIX_SEQ_WRITES", 190);
        p.set_ic("POSIX_FILE_NOT_ALIGNED", 30);
        p.set_ic("POSIX_BYTES_READ", 1000);
        p.set_ic("POSIX_BYTES_WRITTEN", 2000);
        p.set_ic("POSIX_MAX_BYTE_READ", 499);
        p.set_fc("POSIX_F_META_TIME", 80.0);
        p.set_ic("POSIX_FASTEST_RANK_BYTES", 400);
        p.set_ic("POSIX_SLOWEST_RANK_BYTES", 100);
        t.push(p);
        let mut m = Record::new(Module::Mpiio, -1, 1, "/scratch/a");
        m.set_ic("MPIIO_INDEP_READS", 50);
        m.set_ic("MPIIO_COLL_READS", 0);
        m.set_ic("MPIIO_INDEP_WRITES", 10);
        m.set_ic("MPIIO_COLL_WRITES", 90);
        t.push(m);
        let mut l = Record::new(Module::Lustre, -1, 1, "/scratch/a");
        l.set_ic("LUSTRE_OSTS", 64);
        l.set_ic("LUSTRE_STRIPE_WIDTH", 1);
        l.set_ic("LUSTRE_STRIPE_SIZE", 1 << 20);
        l.set_ic("LUSTRE_OST_ID_0", 13);
        t.push(l);
        t
    }

    #[test]
    fn posix_fractions() {
        let agg = aggregate(&trace(), Module::Posix).unwrap();
        assert!((agg.small_read_fraction() - 0.8).abs() < 1e-9);
        assert!((agg.small_write_fraction() - 0.0).abs() < 1e-9);
        assert!((agg.misaligned_fraction() - 0.1).abs() < 1e-9);
        assert!((agg.seq_read_fraction() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn meta_time_fraction_uses_rank_scaled_denominator() {
        let agg = aggregate(&trace(), Module::Posix).unwrap();
        // 80 seconds of metadata time over 100 s × 8 ranks = 10 %.
        assert!((agg.meta_time_fraction(100.0, 8) - 0.1).abs() < 1e-9);
        assert_eq!(agg.meta_time_fraction(0.0, 8), 0.0);
    }

    #[test]
    fn rank_imbalance_ratio() {
        let agg = aggregate(&trace(), Module::Posix).unwrap();
        assert!((agg.rank_byte_imbalance() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn read_reuse_detects_rereads() {
        let agg = aggregate(&trace(), Module::Posix).unwrap();
        // 1000 bytes read over a 500-byte range => factor 2.
        assert!((agg.read_reuse_factor() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mpiio_collective_fractions() {
        let agg = aggregate(&trace(), Module::Mpiio).unwrap();
        assert_eq!(agg.collective_read_fraction(), 0.0);
        assert!((agg.collective_write_fraction() - 0.9).abs() < 1e-9);
        assert_eq!(agg.reads, 50);
        assert_eq!(agg.writes, 100);
    }

    #[test]
    fn lustre_summary_basics() {
        let s = lustre_summary(&trace()).unwrap();
        assert_eq!(s.total_osts, 64);
        assert_eq!(s.mean_stripe_width(), 1.0);
        assert_eq!(s.distinct_osts_used, 1);
        assert!(s.ost_utilisation() < 0.05);
    }

    #[test]
    fn trace_summary_composition() {
        let s = TraceSummary::of(&trace());
        assert!(s.posix.is_some());
        assert!(s.mpiio.is_some());
        assert!(s.stdio.is_none());
        assert_eq!(s.total_bytes(), 3000);
        assert!(!s.multi_process_without_mpi());
    }

    #[test]
    fn multi_process_without_mpi_flags_posix_only_jobs() {
        let mut t = trace();
        t.records.retain(|r| r.module != Module::Mpiio);
        assert!(TraceSummary::of(&t).multi_process_without_mpi());
        t.header.nprocs = 1;
        assert!(!TraceSummary::of(&t).multi_process_without_mpi());
    }

    #[test]
    fn missing_module_aggregates_to_none() {
        assert!(aggregate(&trace(), Module::Stdio).is_none());
    }

    #[test]
    fn hist_fractions_skips_empty_bins() {
        let agg = aggregate(&trace(), Module::Posix).unwrap();
        let h = agg.hist_fractions(false);
        assert_eq!(h.len(), 2);
        assert!((h["0_100"] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn stdio_fraction_zero_without_stdio() {
        let s = TraceSummary::of(&trace());
        assert_eq!(s.stdio_byte_fraction(), 0.0);
    }
}
