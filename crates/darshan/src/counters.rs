//! Canonical Darshan counter names per instrumentation module.
//!
//! The counter lists mirror the counters emitted by `darshan-parser` for the
//! POSIX, MPI-IO, STDIO and LUSTRE modules (a representative superset of the
//! counters that the IOAgent pre-processor, Drishti's triggers, and the
//! TraceBench generators need). Integer counters and floating-point counters
//! (`*_F_*`) are listed separately because `darshan-parser` prints them with
//! different value formats.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A Darshan instrumentation module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Module {
    /// POSIX I/O interface (open/read/write/seek/stat...).
    Posix,
    /// MPI-IO interface (independent and collective operations).
    Mpiio,
    /// Buffered standard I/O (fopen/fread/fwrite...).
    Stdio,
    /// Lustre file-system striping information.
    Lustre,
}

impl Module {
    /// All modules, in the order `darshan-parser` prints them.
    pub const ALL: [Module; 4] = [Module::Posix, Module::Mpiio, Module::Stdio, Module::Lustre];

    /// The upper-case token used in the `darshan-parser` data rows.
    pub fn as_str(&self) -> &'static str {
        match self {
            Module::Posix => "POSIX",
            Module::Mpiio => "MPIIO",
            Module::Stdio => "STDIO",
            Module::Lustre => "LUSTRE",
        }
    }

    /// The counter-name prefix for this module (`POSIX_`, `MPIIO_`, ...).
    pub fn prefix(&self) -> &'static str {
        self.as_str()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Module {
    type Err = ();
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "POSIX" => Ok(Module::Posix),
            "MPIIO" | "MPI-IO" => Ok(Module::Mpiio),
            "STDIO" => Ok(Module::Stdio),
            "LUSTRE" => Ok(Module::Lustre),
            _ => Err(()),
        }
    }
}

/// Access-size histogram bin suffixes shared by the POSIX and MPI-IO modules.
///
/// Darshan buckets every read and write into one of these ten size ranges;
/// e.g. `POSIX_SIZE_READ_100K_1M` counts reads of 100 KiB - 1 MiB.
pub const SIZE_BINS: [&str; 10] = [
    "0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M", "1M_4M", "4M_10M", "10M_100M", "100M_1G",
    "1G_PLUS",
];

/// Upper (exclusive) byte bound of each size bin, used when classifying a
/// transfer size into a bin. The last bin is unbounded.
pub const SIZE_BIN_UPPER: [u64; 10] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    4_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    u64::MAX,
];

/// Classify a transfer size (bytes) into a size-histogram bin index.
pub fn size_bin_index(size: u64) -> usize {
    SIZE_BIN_UPPER
        .iter()
        .position(|&upper| size < upper)
        .unwrap_or(SIZE_BINS.len() - 1)
}

/// Integer counters recorded by the POSIX module.
pub const POSIX_INT_COUNTERS: &[&str] = &[
    "POSIX_OPENS",
    "POSIX_FILENOS",
    "POSIX_DUPS",
    "POSIX_READS",
    "POSIX_WRITES",
    "POSIX_SEEKS",
    "POSIX_STATS",
    "POSIX_MMAPS",
    "POSIX_FSYNCS",
    "POSIX_FDSYNCS",
    "POSIX_RENAME_SOURCES",
    "POSIX_RENAME_TARGETS",
    "POSIX_MODE",
    "POSIX_BYTES_READ",
    "POSIX_BYTES_WRITTEN",
    "POSIX_MAX_BYTE_READ",
    "POSIX_MAX_BYTE_WRITTEN",
    "POSIX_CONSEC_READS",
    "POSIX_CONSEC_WRITES",
    "POSIX_SEQ_READS",
    "POSIX_SEQ_WRITES",
    "POSIX_RW_SWITCHES",
    "POSIX_MEM_NOT_ALIGNED",
    "POSIX_MEM_ALIGNMENT",
    "POSIX_FILE_NOT_ALIGNED",
    "POSIX_FILE_ALIGNMENT",
    "POSIX_MAX_READ_TIME_SIZE",
    "POSIX_MAX_WRITE_TIME_SIZE",
    "POSIX_SIZE_READ_0_100",
    "POSIX_SIZE_READ_100_1K",
    "POSIX_SIZE_READ_1K_10K",
    "POSIX_SIZE_READ_10K_100K",
    "POSIX_SIZE_READ_100K_1M",
    "POSIX_SIZE_READ_1M_4M",
    "POSIX_SIZE_READ_4M_10M",
    "POSIX_SIZE_READ_10M_100M",
    "POSIX_SIZE_READ_100M_1G",
    "POSIX_SIZE_READ_1G_PLUS",
    "POSIX_SIZE_WRITE_0_100",
    "POSIX_SIZE_WRITE_100_1K",
    "POSIX_SIZE_WRITE_1K_10K",
    "POSIX_SIZE_WRITE_10K_100K",
    "POSIX_SIZE_WRITE_100K_1M",
    "POSIX_SIZE_WRITE_1M_4M",
    "POSIX_SIZE_WRITE_4M_10M",
    "POSIX_SIZE_WRITE_10M_100M",
    "POSIX_SIZE_WRITE_100M_1G",
    "POSIX_SIZE_WRITE_1G_PLUS",
    "POSIX_STRIDE1_STRIDE",
    "POSIX_STRIDE2_STRIDE",
    "POSIX_STRIDE3_STRIDE",
    "POSIX_STRIDE4_STRIDE",
    "POSIX_STRIDE1_COUNT",
    "POSIX_STRIDE2_COUNT",
    "POSIX_STRIDE3_COUNT",
    "POSIX_STRIDE4_COUNT",
    "POSIX_ACCESS1_ACCESS",
    "POSIX_ACCESS2_ACCESS",
    "POSIX_ACCESS3_ACCESS",
    "POSIX_ACCESS4_ACCESS",
    "POSIX_ACCESS1_COUNT",
    "POSIX_ACCESS2_COUNT",
    "POSIX_ACCESS3_COUNT",
    "POSIX_ACCESS4_COUNT",
    "POSIX_FASTEST_RANK",
    "POSIX_FASTEST_RANK_BYTES",
    "POSIX_SLOWEST_RANK",
    "POSIX_SLOWEST_RANK_BYTES",
];

/// Floating-point counters recorded by the POSIX module.
pub const POSIX_FLOAT_COUNTERS: &[&str] = &[
    "POSIX_F_OPEN_START_TIMESTAMP",
    "POSIX_F_READ_START_TIMESTAMP",
    "POSIX_F_WRITE_START_TIMESTAMP",
    "POSIX_F_CLOSE_START_TIMESTAMP",
    "POSIX_F_OPEN_END_TIMESTAMP",
    "POSIX_F_READ_END_TIMESTAMP",
    "POSIX_F_WRITE_END_TIMESTAMP",
    "POSIX_F_CLOSE_END_TIMESTAMP",
    "POSIX_F_READ_TIME",
    "POSIX_F_WRITE_TIME",
    "POSIX_F_META_TIME",
    "POSIX_F_MAX_READ_TIME",
    "POSIX_F_MAX_WRITE_TIME",
    "POSIX_F_FASTEST_RANK_TIME",
    "POSIX_F_SLOWEST_RANK_TIME",
    "POSIX_F_VARIANCE_RANK_TIME",
    "POSIX_F_VARIANCE_RANK_BYTES",
];

/// Integer counters recorded by the MPI-IO module.
pub const MPIIO_INT_COUNTERS: &[&str] = &[
    "MPIIO_INDEP_OPENS",
    "MPIIO_COLL_OPENS",
    "MPIIO_INDEP_READS",
    "MPIIO_INDEP_WRITES",
    "MPIIO_COLL_READS",
    "MPIIO_COLL_WRITES",
    "MPIIO_SPLIT_READS",
    "MPIIO_SPLIT_WRITES",
    "MPIIO_NB_READS",
    "MPIIO_NB_WRITES",
    "MPIIO_SYNCS",
    "MPIIO_HINTS",
    "MPIIO_VIEWS",
    "MPIIO_MODE",
    "MPIIO_BYTES_READ",
    "MPIIO_BYTES_WRITTEN",
    "MPIIO_RW_SWITCHES",
    "MPIIO_MAX_READ_TIME_SIZE",
    "MPIIO_MAX_WRITE_TIME_SIZE",
    "MPIIO_SIZE_READ_AGG_0_100",
    "MPIIO_SIZE_READ_AGG_100_1K",
    "MPIIO_SIZE_READ_AGG_1K_10K",
    "MPIIO_SIZE_READ_AGG_10K_100K",
    "MPIIO_SIZE_READ_AGG_100K_1M",
    "MPIIO_SIZE_READ_AGG_1M_4M",
    "MPIIO_SIZE_READ_AGG_4M_10M",
    "MPIIO_SIZE_READ_AGG_10M_100M",
    "MPIIO_SIZE_READ_AGG_100M_1G",
    "MPIIO_SIZE_READ_AGG_1G_PLUS",
    "MPIIO_SIZE_WRITE_AGG_0_100",
    "MPIIO_SIZE_WRITE_AGG_100_1K",
    "MPIIO_SIZE_WRITE_AGG_1K_10K",
    "MPIIO_SIZE_WRITE_AGG_10K_100K",
    "MPIIO_SIZE_WRITE_AGG_100K_1M",
    "MPIIO_SIZE_WRITE_AGG_1M_4M",
    "MPIIO_SIZE_WRITE_AGG_4M_10M",
    "MPIIO_SIZE_WRITE_AGG_10M_100M",
    "MPIIO_SIZE_WRITE_AGG_100M_1G",
    "MPIIO_SIZE_WRITE_AGG_1G_PLUS",
    "MPIIO_ACCESS1_ACCESS",
    "MPIIO_ACCESS2_ACCESS",
    "MPIIO_ACCESS3_ACCESS",
    "MPIIO_ACCESS4_ACCESS",
    "MPIIO_ACCESS1_COUNT",
    "MPIIO_ACCESS2_COUNT",
    "MPIIO_ACCESS3_COUNT",
    "MPIIO_ACCESS4_COUNT",
    "MPIIO_FASTEST_RANK",
    "MPIIO_FASTEST_RANK_BYTES",
    "MPIIO_SLOWEST_RANK",
    "MPIIO_SLOWEST_RANK_BYTES",
];

/// Floating-point counters recorded by the MPI-IO module.
pub const MPIIO_FLOAT_COUNTERS: &[&str] = &[
    "MPIIO_F_OPEN_START_TIMESTAMP",
    "MPIIO_F_READ_START_TIMESTAMP",
    "MPIIO_F_WRITE_START_TIMESTAMP",
    "MPIIO_F_CLOSE_START_TIMESTAMP",
    "MPIIO_F_OPEN_END_TIMESTAMP",
    "MPIIO_F_READ_END_TIMESTAMP",
    "MPIIO_F_WRITE_END_TIMESTAMP",
    "MPIIO_F_CLOSE_END_TIMESTAMP",
    "MPIIO_F_READ_TIME",
    "MPIIO_F_WRITE_TIME",
    "MPIIO_F_META_TIME",
    "MPIIO_F_MAX_READ_TIME",
    "MPIIO_F_MAX_WRITE_TIME",
    "MPIIO_F_FASTEST_RANK_TIME",
    "MPIIO_F_SLOWEST_RANK_TIME",
    "MPIIO_F_VARIANCE_RANK_TIME",
    "MPIIO_F_VARIANCE_RANK_BYTES",
];

/// Integer counters recorded by the STDIO module.
pub const STDIO_INT_COUNTERS: &[&str] = &[
    "STDIO_OPENS",
    "STDIO_FDOPENS",
    "STDIO_READS",
    "STDIO_WRITES",
    "STDIO_SEEKS",
    "STDIO_FLUSHES",
    "STDIO_BYTES_WRITTEN",
    "STDIO_BYTES_READ",
    "STDIO_MAX_BYTE_READ",
    "STDIO_MAX_BYTE_WRITTEN",
    "STDIO_FASTEST_RANK",
    "STDIO_FASTEST_RANK_BYTES",
    "STDIO_SLOWEST_RANK",
    "STDIO_SLOWEST_RANK_BYTES",
];

/// Floating-point counters recorded by the STDIO module.
pub const STDIO_FLOAT_COUNTERS: &[&str] = &[
    "STDIO_F_META_TIME",
    "STDIO_F_WRITE_TIME",
    "STDIO_F_READ_TIME",
    "STDIO_F_OPEN_START_TIMESTAMP",
    "STDIO_F_CLOSE_START_TIMESTAMP",
    "STDIO_F_WRITE_START_TIMESTAMP",
    "STDIO_F_READ_START_TIMESTAMP",
    "STDIO_F_OPEN_END_TIMESTAMP",
    "STDIO_F_CLOSE_END_TIMESTAMP",
    "STDIO_F_WRITE_END_TIMESTAMP",
    "STDIO_F_READ_END_TIMESTAMP",
    "STDIO_F_FASTEST_RANK_TIME",
    "STDIO_F_SLOWEST_RANK_TIME",
    "STDIO_F_VARIANCE_RANK_TIME",
    "STDIO_F_VARIANCE_RANK_BYTES",
];

/// Integer counters recorded by the LUSTRE module. `LUSTRE_OST_ID_*`
/// counters (one per stripe) are generated dynamically and are therefore not
/// listed here; any counter matching that prefix is accepted by the parser.
pub const LUSTRE_INT_COUNTERS: &[&str] = &[
    "LUSTRE_OSTS",
    "LUSTRE_MDTS",
    "LUSTRE_STRIPE_OFFSET",
    "LUSTRE_STRIPE_SIZE",
    "LUSTRE_STRIPE_WIDTH",
];

/// Whether a counter name denotes a floating-point counter.
///
/// Darshan's convention is that float counters carry an `_F_` infix
/// (`POSIX_F_READ_TIME`); everything else is a 64-bit integer counter.
pub fn is_float_counter(name: &str) -> bool {
    name.contains("_F_")
}

/// Whether `name` is a known counter of `module` (including the dynamic
/// `LUSTRE_OST_ID_*` family).
pub fn is_known_counter(module: Module, name: &str) -> bool {
    let (ints, floats): (&[&str], &[&str]) = match module {
        Module::Posix => (POSIX_INT_COUNTERS, POSIX_FLOAT_COUNTERS),
        Module::Mpiio => (MPIIO_INT_COUNTERS, MPIIO_FLOAT_COUNTERS),
        Module::Stdio => (STDIO_INT_COUNTERS, STDIO_FLOAT_COUNTERS),
        Module::Lustre => (LUSTRE_INT_COUNTERS, &[]),
    };
    if module == Module::Lustre && name.starts_with("LUSTRE_OST_ID_") {
        return true;
    }
    ints.contains(&name) || floats.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_str_round_trip() {
        for m in Module::ALL {
            assert_eq!(m.as_str().parse::<Module>().unwrap(), m);
        }
    }

    #[test]
    fn unknown_module_rejected() {
        assert!("HDF5".parse::<Module>().is_err());
        assert!("".parse::<Module>().is_err());
    }

    #[test]
    fn float_counter_classification() {
        assert!(is_float_counter("POSIX_F_READ_TIME"));
        assert!(is_float_counter("MPIIO_F_VARIANCE_RANK_BYTES"));
        assert!(!is_float_counter("POSIX_READS"));
        assert!(!is_float_counter("LUSTRE_STRIPE_WIDTH"));
    }

    #[test]
    fn size_bin_boundaries() {
        assert_eq!(size_bin_index(0), 0);
        assert_eq!(size_bin_index(99), 0);
        assert_eq!(size_bin_index(100), 1);
        assert_eq!(size_bin_index(999), 1);
        assert_eq!(size_bin_index(1_000), 2);
        assert_eq!(size_bin_index(999_999), 4);
        assert_eq!(size_bin_index(1_000_000), 5);
        assert_eq!(size_bin_index(4_000_000), 6);
        assert_eq!(size_bin_index(1_000_000_000), 9);
        assert_eq!(size_bin_index(u64::MAX - 1), 9);
    }

    #[test]
    fn size_bin_names_align_with_bounds() {
        assert_eq!(SIZE_BINS.len(), SIZE_BIN_UPPER.len());
    }

    #[test]
    fn histogram_counters_exist_for_all_bins() {
        for bin in SIZE_BINS {
            let read = format!("POSIX_SIZE_READ_{bin}");
            let write = format!("POSIX_SIZE_WRITE_{bin}");
            assert!(POSIX_INT_COUNTERS.contains(&read.as_str()), "{read}");
            assert!(POSIX_INT_COUNTERS.contains(&write.as_str()), "{write}");
            let agg_r = format!("MPIIO_SIZE_READ_AGG_{bin}");
            assert!(MPIIO_INT_COUNTERS.contains(&agg_r.as_str()), "{agg_r}");
        }
    }

    #[test]
    fn known_counter_lookup() {
        assert!(is_known_counter(Module::Posix, "POSIX_OPENS"));
        assert!(is_known_counter(Module::Lustre, "LUSTRE_OST_ID_17"));
        assert!(!is_known_counter(Module::Posix, "MPIIO_SYNCS"));
        assert!(!is_known_counter(Module::Stdio, "STDIO_NOPE"));
    }

    #[test]
    fn no_duplicate_counter_names() {
        let mut all: Vec<&str> = POSIX_INT_COUNTERS
            .iter()
            .chain(POSIX_FLOAT_COUNTERS)
            .chain(MPIIO_INT_COUNTERS)
            .chain(MPIIO_FLOAT_COUNTERS)
            .chain(STDIO_INT_COUNTERS)
            .chain(STDIO_FLOAT_COUNTERS)
            .chain(LUSTRE_INT_COUNTERS)
            .copied()
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(before, all.len(), "duplicate counter name in tables");
    }
}
