//! The full trace: job header plus all per-file records.

use crate::counters::Module;
use crate::record::Record;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A mounted file system visible to the instrumented job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mount {
    /// Mount point path, e.g. `/scratch`.
    pub point: String,
    /// File-system type, e.g. `lustre`.
    pub fs: String,
}

/// Job-level metadata from the Darshan log header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobHeader {
    /// Darshan log format version string.
    pub version: String,
    /// Executable path and arguments.
    pub exe: String,
    /// Numeric user id of the job owner.
    pub uid: u64,
    /// Scheduler job identifier.
    pub jobid: u64,
    /// Number of MPI processes in the job.
    pub nprocs: u64,
    /// Job start time (unix seconds).
    pub start_time: u64,
    /// Job end time (unix seconds).
    pub end_time: u64,
    /// Wall-clock run time in seconds.
    pub run_time: f64,
    /// Mounted file systems recorded in the header.
    pub mounts: Vec<Mount>,
    /// Free-form `key: value` metadata lines (e.g. `lib_ver`).
    pub metadata: BTreeMap<String, String>,
}

impl Default for JobHeader {
    fn default() -> Self {
        JobHeader {
            version: "3.41".to_string(),
            exe: "./a.out".to_string(),
            uid: 1000,
            jobid: 0,
            nprocs: 1,
            start_time: 1_700_000_000,
            end_time: 1_700_000_060,
            run_time: 60.0,
            mounts: vec![Mount {
                point: "/".to_string(),
                fs: "ext4".to_string(),
            }],
            metadata: BTreeMap::new(),
        }
    }
}

impl JobHeader {
    /// Convenience constructor for the fields every generator sets.
    pub fn new(exe: impl Into<String>, nprocs: u64, run_time: f64) -> Self {
        let start = 1_700_000_000u64;
        JobHeader {
            exe: exe.into(),
            nprocs,
            run_time,
            start_time: start,
            end_time: start + run_time.ceil() as u64,
            ..JobHeader::default()
        }
    }
}

/// A parsed Darshan trace: header plus every per-file module record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DarshanTrace {
    /// Job-level header metadata.
    pub header: JobHeader,
    /// All records, in no particular order.
    pub records: Vec<Record>,
}

impl DarshanTrace {
    /// Create an empty trace with the given header.
    pub fn new(header: JobHeader) -> Self {
        DarshanTrace {
            header,
            records: Vec::new(),
        }
    }

    /// Append a record.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// All records produced by `module`.
    pub fn records_for(&self, module: Module) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(move |r| r.module == module)
    }

    /// Whether any record of `module` exists in the trace.
    pub fn module_present(&self, module: Module) -> bool {
        self.records.iter().any(|r| r.module == module)
    }

    /// The set of modules present in the trace, in canonical order.
    pub fn modules(&self) -> Vec<Module> {
        Module::ALL
            .into_iter()
            .filter(|m| self.module_present(*m))
            .collect()
    }

    /// Distinct file paths touched by any module.
    pub fn files(&self) -> BTreeSet<&str> {
        self.records.iter().map(|r| r.file.as_str()).collect()
    }

    /// Distinct file paths touched by one module.
    pub fn files_for(&self, module: Module) -> BTreeSet<&str> {
        self.records_for(module).map(|r| r.file.as_str()).collect()
    }

    /// Total bytes moved (read + written) through POSIX and STDIO.
    ///
    /// MPI-IO volumes are *not* added on top because MPI-IO operations are
    /// ultimately serviced by POSIX in Darshan's layering; adding both would
    /// double-count.
    pub fn total_bytes(&self) -> u64 {
        let posix: i64 = self
            .records_for(Module::Posix)
            .map(|r| r.ic("POSIX_BYTES_READ") + r.ic("POSIX_BYTES_WRITTEN"))
            .sum();
        let stdio: i64 = self
            .records_for(Module::Stdio)
            .map(|r| r.ic("STDIO_BYTES_READ") + r.ic("STDIO_BYTES_WRITTEN"))
            .sum();
        (posix + stdio).max(0) as u64
    }

    /// Number of shared-file records (rank -1) for a module.
    pub fn shared_file_count(&self, module: Module) -> usize {
        self.records_for(module).filter(|r| r.is_shared()).count()
    }

    /// Estimated total number of text lines this trace would occupy in
    /// `darshan-parser` output. Used by LLM front-ends to decide whether a
    /// trace fits a context window.
    pub fn parser_line_estimate(&self) -> usize {
        let header = 16 + self.header.mounts.len();
        let counters: usize = self.records.iter().map(|r| r.len()).sum();
        header + counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with_modules() -> DarshanTrace {
        let mut t = DarshanTrace::new(JobHeader::new("./app", 8, 120.0));
        let mut p = Record::new(Module::Posix, -1, 1, "/scratch/a");
        p.set_ic("POSIX_BYTES_READ", 1000);
        p.set_ic("POSIX_BYTES_WRITTEN", 500);
        t.push(p);
        let mut s = Record::new(Module::Stdio, 0, 2, "/home/cfg");
        s.set_ic("STDIO_BYTES_READ", 10);
        t.push(s);
        let mut m = Record::new(Module::Mpiio, -1, 1, "/scratch/a");
        m.set_ic("MPIIO_BYTES_READ", 1000);
        t.push(m);
        t
    }

    #[test]
    fn module_queries() {
        let t = trace_with_modules();
        assert!(t.module_present(Module::Posix));
        assert!(t.module_present(Module::Stdio));
        assert!(!t.module_present(Module::Lustre));
        assert_eq!(
            t.modules(),
            vec![Module::Posix, Module::Mpiio, Module::Stdio]
        );
    }

    #[test]
    fn total_bytes_excludes_mpiio_double_count() {
        let t = trace_with_modules();
        assert_eq!(t.total_bytes(), 1510);
    }

    #[test]
    fn file_sets() {
        let t = trace_with_modules();
        assert_eq!(t.files().len(), 2);
        assert_eq!(t.files_for(Module::Posix).len(), 1);
        assert!(t.files().contains("/home/cfg"));
    }

    #[test]
    fn shared_count() {
        let t = trace_with_modules();
        assert_eq!(t.shared_file_count(Module::Posix), 1);
        assert_eq!(t.shared_file_count(Module::Stdio), 0);
    }

    #[test]
    fn header_new_sets_end_time() {
        let h = JobHeader::new("./x", 4, 10.5);
        assert_eq!(h.end_time, h.start_time + 11);
        assert_eq!(h.nprocs, 4);
    }

    #[test]
    fn line_estimate_counts_counters() {
        let t = trace_with_modules();
        assert!(t.parser_line_estimate() > 16);
    }
}
