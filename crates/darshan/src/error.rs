//! Error type for Darshan text parsing.

use std::fmt;

/// Errors produced while parsing `darshan-parser` text output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DarshanError {
    /// A data row did not have the expected column count.
    MalformedRow { line: usize, content: String },
    /// A data row named an unknown module.
    UnknownModule { line: usize, module: String },
    /// A numeric field failed to parse.
    BadNumber {
        line: usize,
        field: &'static str,
        value: String,
    },
    /// The header was missing a mandatory field.
    MissingHeader(&'static str),
}

impl fmt::Display for DarshanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DarshanError::MalformedRow { line, content } => {
                write!(f, "line {line}: malformed data row: {content:?}")
            }
            DarshanError::UnknownModule { line, module } => {
                write!(f, "line {line}: unknown module {module:?}")
            }
            DarshanError::BadNumber { line, field, value } => {
                write!(f, "line {line}: cannot parse {field} from {value:?}")
            }
            DarshanError::MissingHeader(field) => {
                write!(f, "header is missing mandatory field {field:?}")
            }
        }
    }
}

impl std::error::Error for DarshanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DarshanError::BadNumber {
            line: 3,
            field: "rank",
            value: "x".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("line 3"));
        assert!(msg.contains("rank"));
    }
}
