//! Darshan eXtended Tracing (DXT) support.
//!
//! The paper analyses aggregate Darshan counters and leaves DXT — Darshan's
//! per-operation tracing mode, recording each read/write with offset,
//! length, and timestamps — as future work (§II-A). This module implements
//! that extension: the event model, a `darshan-dxt-parser`-style text
//! format (round-trippable, like the counter format), and the per-file
//! statistics that fine-grained analysis unlocks (exact stride detection,
//! burstiness, rank timelines).

use crate::counters::Module;
use crate::error::DarshanError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Operation direction of one DXT event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DxtOp {
    /// A read.
    Read,
    /// A write.
    Write,
}

impl DxtOp {
    fn as_str(&self) -> &'static str {
        match self {
            DxtOp::Read => "read",
            DxtOp::Write => "write",
        }
    }
}

/// One traced I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DxtEvent {
    /// Interface the operation went through.
    pub module: Module,
    /// Issuing MPI rank.
    pub rank: i64,
    /// Direction.
    pub op: DxtOp,
    /// Ordinal of this operation within (rank, file).
    pub segment: u64,
    /// File offset in bytes.
    pub offset: u64,
    /// Transfer length in bytes.
    pub length: u64,
    /// Start time, seconds since job start.
    pub start: f64,
    /// End time, seconds since job start.
    pub end: f64,
}

/// DXT events for one file.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DxtFileTrace {
    /// Darshan record id of the file.
    pub record_id: u64,
    /// File path.
    pub file: String,
    /// Events in issue order.
    pub events: Vec<DxtEvent>,
}

/// A full DXT trace (per-file event streams).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DxtTrace {
    /// Per-file traces keyed by record id.
    pub files: BTreeMap<u64, DxtFileTrace>,
}

impl DxtTrace {
    /// Total event count.
    pub fn len(&self) -> usize {
        self.files.values().map(|f| f.events.len()).sum()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append an event for a file (creating the per-file stream lazily).
    pub fn push(&mut self, record_id: u64, file: &str, event: DxtEvent) {
        let entry = self.files.entry(record_id).or_insert_with(|| DxtFileTrace {
            record_id,
            file: file.to_string(),
            ..DxtFileTrace::default()
        });
        entry.events.push(event);
    }
}

/// Serialize a DXT trace in `darshan-dxt-parser`-style text.
pub fn write_dxt_text(trace: &DxtTrace) -> String {
    let mut out = String::new();
    writeln!(out, "# ***************************************************").unwrap();
    writeln!(
        out,
        "# DXT trace (module, rank, op, segment, offset, length, start, end)"
    )
    .unwrap();
    for file in trace.files.values() {
        writeln!(
            out,
            "# DXT, file_id: {}, file_name: {}",
            file.record_id, file.file
        )
        .unwrap();
        for e in &file.events {
            writeln!(
                out,
                "X_{}\t{}\t{}\t{}\t{}\t{}\t{:.6}\t{:.6}",
                e.module.as_str(),
                e.rank,
                e.op.as_str(),
                e.segment,
                e.offset,
                e.length,
                e.start,
                e.end
            )
            .unwrap();
        }
    }
    out
}

/// Parse `darshan-dxt-parser`-style text back into a [`DxtTrace`].
pub fn parse_dxt_text(input: &str) -> Result<DxtTrace, DarshanError> {
    let mut trace = DxtTrace::default();
    let mut current: Option<(u64, String)> = None;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# DXT, file_id:") {
            let mut parts = rest.splitn(2, ", file_name:");
            let id_part = parts.next().unwrap_or("").trim();
            let name_part = parts.next().unwrap_or("").trim();
            let record_id = id_part.parse().map_err(|_| DarshanError::BadNumber {
                line: lineno,
                field: "file_id",
                value: id_part.into(),
            })?;
            current = Some((record_id, name_part.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 8 {
            return Err(DarshanError::MalformedRow {
                line: lineno,
                content: line.into(),
            });
        }
        let module: Module = cols[0]
            .strip_prefix("X_")
            .unwrap_or(cols[0])
            .parse()
            .map_err(|_| DarshanError::UnknownModule {
                line: lineno,
                module: cols[0].into(),
            })?;
        let bad = |field: &'static str, value: &str| DarshanError::BadNumber {
            line: lineno,
            field,
            value: value.into(),
        };
        let rank = cols[1].parse().map_err(|_| bad("rank", cols[1]))?;
        let op = match cols[2] {
            "read" => DxtOp::Read,
            "write" => DxtOp::Write,
            other => return Err(bad("op", other)),
        };
        let segment = cols[3].parse().map_err(|_| bad("segment", cols[3]))?;
        let offset = cols[4].parse().map_err(|_| bad("offset", cols[4]))?;
        let length = cols[5].parse().map_err(|_| bad("length", cols[5]))?;
        let start = cols[6].parse().map_err(|_| bad("start", cols[6]))?;
        let end = cols[7].parse().map_err(|_| bad("end", cols[7]))?;
        let (record_id, file) = current.clone().ok_or(DarshanError::MissingHeader(
            "DXT file_id header before events",
        ))?;
        trace.push(
            record_id,
            &file,
            DxtEvent {
                module,
                rank,
                op,
                segment,
                offset,
                length,
                start,
                end,
            },
        );
    }
    Ok(trace)
}

/// Per-file statistics derived from DXT events — the fine-grained view
/// aggregate counters cannot provide.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DxtFileStats {
    /// Number of events.
    pub events: usize,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Fraction of consecutive accesses (offset == previous end) per rank.
    pub consecutive_fraction: f64,
    /// Dominant positive stride between same-rank accesses (bytes), if any.
    pub dominant_stride: Option<i64>,
    /// Mean operation duration in seconds.
    pub mean_duration: f64,
    /// Peak instantaneous concurrency (ranks with an operation in flight).
    pub peak_concurrency: usize,
    /// Time of the busiest 10 % window start (burst detection), seconds.
    pub burst_start: f64,
}

/// Compute per-file statistics from a DXT stream.
pub fn file_stats(file: &DxtFileTrace) -> DxtFileStats {
    let n = file.events.len();
    if n == 0 {
        return DxtFileStats::default();
    }
    let bytes: u64 = file.events.iter().map(|e| e.length).sum();
    let mean_duration = file
        .events
        .iter()
        .map(|e| (e.end - e.start).max(0.0))
        .sum::<f64>()
        / n as f64;

    // Per-rank offset sequences for sequentiality and stride analysis.
    let mut per_rank: BTreeMap<i64, Vec<&DxtEvent>> = BTreeMap::new();
    for e in &file.events {
        per_rank.entry(e.rank).or_default().push(e);
    }
    let mut consecutive = 0usize;
    let mut pairs = 0usize;
    let mut strides: BTreeMap<i64, usize> = BTreeMap::new();
    for events in per_rank.values() {
        for w in events.windows(2) {
            pairs += 1;
            let prev_end = w[0].offset + w[0].length;
            if w[1].offset == prev_end {
                consecutive += 1;
            }
            let stride = w[1].offset as i64 - w[0].offset as i64;
            if stride != 0 {
                *strides.entry(stride).or_insert(0) += 1;
            }
        }
    }
    let consecutive_fraction = if pairs == 0 {
        1.0
    } else {
        consecutive as f64 / pairs as f64
    };
    let dominant_stride = strides
        .iter()
        .max_by_key(|(_, &c)| c)
        .filter(|(_, &c)| pairs > 0 && c * 2 >= pairs)
        .map(|(&s, _)| s);

    // Concurrency and burst detection over the event timeline.
    let mut edges: Vec<(f64, i32)> = Vec::with_capacity(2 * n);
    for e in &file.events {
        edges.push((e.start, 1));
        edges.push((e.end, -1));
    }
    // NaN-safe ordering: parsed timestamps can be NaN (the text format
    // accepts any f64), and `partial_cmp().unwrap()` would panic here;
    // `total_cmp` sorts NaNs to the ends and degrades gracefully instead.
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut live = 0i32;
    let mut peak = 0i32;
    for (_, d) in &edges {
        live += d;
        peak = peak.max(live);
    }

    let t_min = file.events.iter().map(|e| e.start).fold(f64::MAX, f64::min);
    let t_max = file.events.iter().map(|e| e.end).fold(f64::MIN, f64::max);
    let span = (t_max - t_min).max(1e-9);
    let window = span * 0.1;
    let mut burst_start = t_min;
    let mut best = 0usize;
    let starts: Vec<f64> = file.events.iter().map(|e| e.start).collect();
    for e in &file.events {
        let w_start = e.start;
        let count = starts
            .iter()
            .filter(|&&s| s >= w_start && s < w_start + window)
            .count();
        if count > best {
            best = count;
            burst_start = w_start;
        }
    }

    DxtFileStats {
        events: n,
        bytes,
        consecutive_fraction,
        dominant_stride,
        mean_duration,
        peak_concurrency: peak.max(0) as usize,
        burst_start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(rank: i64, op: DxtOp, offset: u64, length: u64, start: f64) -> DxtEvent {
        DxtEvent {
            module: Module::Posix,
            rank,
            op,
            segment: 0,
            offset,
            length,
            start,
            end: start + 0.001,
        }
    }

    fn sequential_trace() -> DxtTrace {
        let mut t = DxtTrace::default();
        for i in 0..10u64 {
            t.push(
                7,
                "/scratch/seq",
                event(0, DxtOp::Write, i * 4096, 4096, i as f64 * 0.01),
            );
        }
        t
    }

    #[test]
    fn nan_timestamps_do_not_panic_file_stats() {
        // Regression: the concurrency edge sort used `partial_cmp().unwrap()`
        // and panicked on NaN timestamps, which the text parser accepts.
        let mut t = DxtTrace::default();
        t.push(1, "/scratch/nan", event(0, DxtOp::Write, 0, 4096, 0.0));
        let mut bad = event(1, DxtOp::Read, 4096, 4096, 0.5);
        bad.start = f64::NAN;
        bad.end = f64::NAN;
        t.push(1, "/scratch/nan", bad);
        let stats = file_stats(&t.files[&1]);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.bytes, 8192);
    }

    #[test]
    fn round_trip_preserves_events() {
        let t = sequential_trace();
        let text = write_dxt_text(&t);
        let back = parse_dxt_text(&text).unwrap();
        assert_eq!(back.len(), t.len());
        let (a, b) = (&t.files[&7], &back.files[&7]);
        assert_eq!(a.file, b.file);
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(
                (x.module, x.rank, x.op, x.segment, x.offset, x.length),
                (y.module, y.rank, y.op, y.segment, y.offset, y.length)
            );
            // Timestamps are serialised at microsecond precision.
            assert!((x.start - y.start).abs() < 1e-6);
            assert!((x.end - y.end).abs() < 1e-6);
        }
    }

    #[test]
    fn consecutive_fraction_detects_streaming() {
        let t = sequential_trace();
        let stats = file_stats(&t.files[&7]);
        assert_eq!(stats.events, 10);
        assert_eq!(stats.bytes, 40960);
        assert!((stats.consecutive_fraction - 1.0).abs() < 1e-12);
        assert_eq!(stats.dominant_stride, Some(4096));
    }

    #[test]
    fn strided_pattern_detected() {
        let mut t = DxtTrace::default();
        // 1 MB stride with 4 KB transfers: classic interleaved shared file.
        for i in 0..20u64 {
            t.push(
                9,
                "/scratch/strided",
                event(1, DxtOp::Write, i * 1048576, 4096, i as f64),
            );
        }
        let stats = file_stats(&t.files[&9]);
        assert_eq!(stats.dominant_stride, Some(1048576));
        assert_eq!(stats.consecutive_fraction, 0.0);
    }

    #[test]
    fn random_pattern_has_no_dominant_stride() {
        let mut t = DxtTrace::default();
        let offsets = [0u64, 900_000, 30_000, 4_000_000, 120_000, 2_500_000, 60_000];
        for (i, &o) in offsets.iter().enumerate() {
            t.push(
                3,
                "/scratch/rand",
                event(0, DxtOp::Read, o, 8192, i as f64 * 0.1),
            );
        }
        let stats = file_stats(&t.files[&3]);
        assert_eq!(stats.dominant_stride, None);
        assert!(stats.consecutive_fraction < 0.2);
    }

    #[test]
    fn concurrency_counts_overlapping_ranks() {
        let mut t = DxtTrace::default();
        for rank in 0..4 {
            t.push(
                1,
                "/scratch/conc",
                DxtEvent {
                    module: Module::Posix,
                    rank,
                    op: DxtOp::Write,
                    segment: 0,
                    offset: rank as u64 * 1000,
                    length: 1000,
                    start: 0.0,
                    end: 1.0,
                },
            );
        }
        let stats = file_stats(&t.files[&1]);
        assert_eq!(stats.peak_concurrency, 4);
    }

    #[test]
    fn parse_rejects_events_before_header() {
        let bad = "X_POSIX\t0\twrite\t0\t0\t4096\t0.0\t0.1\n";
        assert!(matches!(
            parse_dxt_text(bad),
            Err(DarshanError::MissingHeader(_))
        ));
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        let bad = "# DXT, file_id: 1, file_name: /x\nX_POSIX\t0\twrite\t0\n";
        assert!(matches!(
            parse_dxt_text(bad),
            Err(DarshanError::MalformedRow { .. })
        ));
        let bad_op =
            "# DXT, file_id: 1, file_name: /x\nX_POSIX\t0\tfrobnicate\t0\t0\t1\t0.0\t0.1\n";
        assert!(matches!(
            parse_dxt_text(bad_op),
            Err(DarshanError::BadNumber { .. })
        ));
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = DxtTrace::default();
        assert!(t.is_empty());
        let back = parse_dxt_text(&write_dxt_text(&t)).unwrap();
        assert!(back.is_empty());
    }
}
