//! Writer emitting the `darshan-parser` text format.
//!
//! The output is deterministic: records are sorted by (module, record id,
//! rank) and counters are emitted in lexicographic order (integer counters
//! first, then floats), so a trace written twice produces identical text and
//! `parse(write(t))` is a lossless round-trip of counters and header fields.

use crate::counters::Module;
use crate::record::Record;
use crate::trace::DarshanTrace;
use std::fmt::Write as _;

/// Serialize a trace into `darshan-parser` compatible text.
pub fn write_text(trace: &DarshanTrace) -> String {
    let mut out = String::with_capacity(4096 + trace.records.len() * 256);
    let h = &trace.header;
    writeln!(out, "# darshan log version: {}", h.version).unwrap();
    writeln!(out, "# exe: {}", h.exe).unwrap();
    writeln!(out, "# uid: {}", h.uid).unwrap();
    writeln!(out, "# jobid: {}", h.jobid).unwrap();
    writeln!(out, "# nprocs: {}", h.nprocs).unwrap();
    writeln!(out, "# start_time: {}", h.start_time).unwrap();
    writeln!(out, "# end_time: {}", h.end_time).unwrap();
    writeln!(out, "# run time: {:.2}", h.run_time).unwrap();
    for (k, v) in &h.metadata {
        writeln!(out, "# {k}: {v}").unwrap();
    }
    writeln!(out, "#").unwrap();
    writeln!(out, "# mounted file systems (mount point and fs type)").unwrap();
    writeln!(
        out,
        "# -------------------------------------------------------"
    )
    .unwrap();
    for m in &h.mounts {
        writeln!(out, "# mount entry:\t{}\t{}", m.point, m.fs).unwrap();
    }
    writeln!(out, "#").unwrap();
    writeln!(
        out,
        "#<module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>\t<mount pt>\t<fs type>"
    )
    .unwrap();

    let mut sorted: Vec<&Record> = trace.records.iter().collect();
    sorted.sort_by(|a, b| {
        (module_order(a.module), a.record_id, a.rank).cmp(&(
            module_order(b.module),
            b.record_id,
            b.rank,
        ))
    });
    for rec in sorted {
        let m = rec.module.as_str();
        for (name, value) in &rec.icounters {
            writeln!(
                out,
                "{m}\t{}\t{}\t{name}\t{value}\t{}\t{}\t{}",
                rec.rank, rec.record_id, rec.file, rec.mount, rec.fs
            )
            .unwrap();
        }
        for (name, value) in &rec.fcounters {
            writeln!(
                out,
                "{m}\t{}\t{}\t{name}\t{value:.6}\t{}\t{}\t{}",
                rec.rank, rec.record_id, rec.file, rec.mount, rec.fs
            )
            .unwrap();
        }
    }
    out
}

fn module_order(m: Module) -> usize {
    Module::ALL
        .iter()
        .position(|x| *x == m)
        .unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_text;
    use crate::trace::JobHeader;

    fn sample_trace() -> DarshanTrace {
        let mut t = DarshanTrace::new(JobHeader::new("./bench", 16, 300.5));
        let mut p =
            Record::new(Module::Posix, -1, 7, "/scratch/data.h5").with_mount("/scratch", "lustre");
        p.set_ic("POSIX_OPENS", 32);
        p.set_ic("POSIX_WRITES", 4096);
        p.set_ic("POSIX_BYTES_WRITTEN", 1 << 30);
        p.set_fc("POSIX_F_WRITE_TIME", 42.125);
        p.set_fc("POSIX_F_META_TIME", 1.5);
        t.push(p);
        let mut l =
            Record::new(Module::Lustre, -1, 7, "/scratch/data.h5").with_mount("/scratch", "lustre");
        l.set_ic("LUSTRE_STRIPE_WIDTH", 4);
        l.set_ic("LUSTRE_STRIPE_SIZE", 1 << 20);
        l.set_ic("LUSTRE_OST_ID_0", 3);
        t.push(l);
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        let text = write_text(&t);
        let back = parse_text(&text).unwrap();
        assert_eq!(back.header.nprocs, 16);
        assert!((back.header.run_time - 300.5).abs() < 1e-9);
        assert_eq!(back.records.len(), t.records.len());
        let p = back.records_for(Module::Posix).next().unwrap();
        assert_eq!(p.ic("POSIX_BYTES_WRITTEN"), 1 << 30);
        assert!((p.fc("POSIX_F_WRITE_TIME") - 42.125).abs() < 1e-6);
        assert_eq!(p.mount, "/scratch");
        let l = back.records_for(Module::Lustre).next().unwrap();
        assert_eq!(l.ic("LUSTRE_OST_ID_0"), 3);
    }

    #[test]
    fn output_is_deterministic() {
        let t = sample_trace();
        assert_eq!(write_text(&t), write_text(&t));
    }

    #[test]
    fn record_order_does_not_affect_output() {
        let t = sample_trace();
        let mut shuffled = t.clone();
        shuffled.records.reverse();
        assert_eq!(write_text(&t), write_text(&shuffled));
    }

    #[test]
    fn header_contains_mounts() {
        let mut t = sample_trace();
        t.header.mounts = vec![crate::trace::Mount {
            point: "/scratch".into(),
            fs: "lustre".into(),
        }];
        let text = write_text(&t);
        assert!(text.contains("# mount entry:\t/scratch\tlustre"));
    }
}
