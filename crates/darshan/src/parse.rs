//! Parser for the `darshan-parser` text format.
//!
//! The format has a `#`-prefixed header (job metadata and mount table)
//! followed by one tab-separated data row per counter:
//!
//! ```text
//! <module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>\t<mount pt>\t<fs type>
//! ```
//!
//! Rows belonging to the same `(module, rank, record id)` triple are folded
//! into a single [`Record`]. Unknown counters are preserved verbatim so the
//! parser is forward-compatible with newer Darshan versions.

use crate::counters::{is_float_counter, Module};
use crate::error::DarshanError;
use crate::record::Record;
use crate::trace::{DarshanTrace, JobHeader, Mount};
use std::collections::BTreeMap;

/// Parse `darshan-parser` text output into a [`DarshanTrace`].
pub fn parse_text(input: &str) -> Result<DarshanTrace, DarshanError> {
    let mut header = JobHeader {
        mounts: Vec::new(),
        ..JobHeader::default()
    };
    let mut seen_nprocs = false;
    // Keyed by (module, rank, record_id) to fold counter rows into records.
    let mut records: BTreeMap<(Module, i64, u64), Record> = BTreeMap::new();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            parse_header_line(rest.trim(), &mut header, &mut seen_nprocs);
            continue;
        }
        let cols: Vec<&str> = if line.contains('\t') {
            line.split('\t').collect()
        } else {
            line.split_whitespace().collect()
        };
        if cols.len() < 5 {
            return Err(DarshanError::MalformedRow {
                line: lineno,
                content: line.to_string(),
            });
        }
        let module: Module = cols[0].parse().map_err(|_| DarshanError::UnknownModule {
            line: lineno,
            module: cols[0].into(),
        })?;
        let rank: i64 = cols[1].parse().map_err(|_| DarshanError::BadNumber {
            line: lineno,
            field: "rank",
            value: cols[1].into(),
        })?;
        let record_id: u64 = cols[2].parse().map_err(|_| DarshanError::BadNumber {
            line: lineno,
            field: "record id",
            value: cols[2].into(),
        })?;
        let counter = cols[3];
        let value = cols[4];
        let file = cols.get(5).copied().unwrap_or("<unknown>");
        let mount = cols.get(6).copied().unwrap_or("/");
        let fs = cols.get(7).copied().unwrap_or("unknown");

        let rec = records
            .entry((module, rank, record_id))
            .or_insert_with(|| Record::new(module, rank, record_id, file).with_mount(mount, fs));
        if is_float_counter(counter) {
            let v: f64 = value.parse().map_err(|_| DarshanError::BadNumber {
                line: lineno,
                field: "float counter value",
                value: value.into(),
            })?;
            rec.set_fc(counter, v);
        } else {
            let v: i64 = value.parse().map_err(|_| DarshanError::BadNumber {
                line: lineno,
                field: "int counter value",
                value: value.into(),
            })?;
            rec.set_ic(counter, v);
        }
    }

    if !seen_nprocs && !records.is_empty() {
        // Tolerate missing nprocs only for header-only (empty) traces.
        return Err(DarshanError::MissingHeader("nprocs"));
    }

    Ok(DarshanTrace {
        header,
        records: records.into_values().collect(),
    })
}

fn parse_header_line(line: &str, header: &mut JobHeader, seen_nprocs: &mut bool) {
    if let Some(rest) = line.strip_prefix("mount entry:") {
        let mut parts = rest.split_whitespace();
        if let (Some(point), Some(fs)) = (parts.next(), parts.next()) {
            header.mounts.push(Mount {
                point: point.to_string(),
                fs: fs.to_string(),
            });
        }
        return;
    }
    let Some((key, value)) = line.split_once(':') else {
        return;
    };
    let key = key.trim();
    let value = value.trim();
    match key {
        "darshan log version" => header.version = value.to_string(),
        "exe" => header.exe = value.to_string(),
        "uid" => header.uid = value.parse().unwrap_or(header.uid),
        "jobid" => header.jobid = value.parse().unwrap_or(header.jobid),
        "nprocs" => {
            if let Ok(v) = value.parse() {
                header.nprocs = v;
                *seen_nprocs = true;
            }
        }
        "start_time" => header.start_time = value.parse().unwrap_or(header.start_time),
        "end_time" => header.end_time = value.parse().unwrap_or(header.end_time),
        "run time" => header.run_time = value.parse().unwrap_or(header.run_time),
        // Anything else (compression method, start_time_asci, ...) is kept
        // as free-form metadata.
        _ => {
            if !key.is_empty() && !key.starts_with('-') && !key.starts_with('<') {
                header.metadata.insert(key.to_string(), value.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# darshan log version: 3.41
# exe: ./amrex_run
# uid: 5001
# jobid: 987654
# nprocs: 8
# start_time: 1700000000
# end_time: 1700000722
# run time: 722.00
# metadata: lib_ver = 3.4.1
# mounted file systems (mount point and fs type)
# mount entry:\t/scratch\tlustre
# mount entry:\t/home\tnfs
POSIX\t-1\t101\tPOSIX_OPENS\t16\t/scratch/plt00000\t/scratch\tlustre
POSIX\t-1\t101\tPOSIX_BYTES_WRITTEN\t1048576\t/scratch/plt00000\t/scratch\tlustre
POSIX\t-1\t101\tPOSIX_F_WRITE_TIME\t3.25\t/scratch/plt00000\t/scratch\tlustre
STDIO\t0\t202\tSTDIO_OPENS\t1\t/home/app.cfg\t/home\tnfs
LUSTRE\t-1\t101\tLUSTRE_STRIPE_WIDTH\t1\t/scratch/plt00000\t/scratch\tlustre
LUSTRE\t-1\t101\tLUSTRE_STRIPE_SIZE\t1048576\t/scratch/plt00000\t/scratch\tlustre
";

    #[test]
    fn parses_header() {
        let t = parse_text(SAMPLE).unwrap();
        assert_eq!(t.header.nprocs, 8);
        assert_eq!(t.header.jobid, 987654);
        assert!((t.header.run_time - 722.0).abs() < 1e-9);
        assert_eq!(t.header.exe, "./amrex_run");
        assert_eq!(t.header.mounts.len(), 2);
        assert_eq!(t.header.mounts[0].point, "/scratch");
        assert_eq!(t.header.mounts[0].fs, "lustre");
        assert_eq!(
            t.header.metadata.get("metadata").map(String::as_str),
            Some("lib_ver = 3.4.1")
        );
    }

    #[test]
    fn folds_rows_into_records() {
        let t = parse_text(SAMPLE).unwrap();
        assert_eq!(t.records.len(), 3);
        let posix: Vec<_> = t.records_for(Module::Posix).collect();
        assert_eq!(posix.len(), 1);
        assert_eq!(posix[0].ic("POSIX_OPENS"), 16);
        assert_eq!(posix[0].ic("POSIX_BYTES_WRITTEN"), 1_048_576);
        assert!((posix[0].fc("POSIX_F_WRITE_TIME") - 3.25).abs() < 1e-12);
        assert_eq!(posix[0].file, "/scratch/plt00000");
        assert_eq!(posix[0].fs, "lustre");
    }

    #[test]
    fn lustre_records_separate_from_posix() {
        let t = parse_text(SAMPLE).unwrap();
        let lustre: Vec<_> = t.records_for(Module::Lustre).collect();
        assert_eq!(lustre.len(), 1);
        assert_eq!(lustre[0].ic("LUSTRE_STRIPE_WIDTH"), 1);
    }

    #[test]
    fn rejects_unknown_module() {
        let bad = "# nprocs: 1\nHDF5\t0\t1\tX\t1\t/f\t/\text4\n";
        match parse_text(bad) {
            Err(DarshanError::UnknownModule { module, .. }) => assert_eq!(module, "HDF5"),
            other => panic!("expected UnknownModule, got {other:?}"),
        }
    }

    #[test]
    fn rejects_short_row() {
        let bad = "# nprocs: 1\nPOSIX\t0\t1\n";
        assert!(matches!(
            parse_text(bad),
            Err(DarshanError::MalformedRow { .. })
        ));
    }

    #[test]
    fn rejects_bad_counter_value() {
        let bad = "# nprocs: 1\nPOSIX\t0\t1\tPOSIX_OPENS\txyz\t/f\t/\text4\n";
        assert!(matches!(
            parse_text(bad),
            Err(DarshanError::BadNumber { .. })
        ));
    }

    #[test]
    fn missing_nprocs_with_data_is_error() {
        let bad = "POSIX\t0\t1\tPOSIX_OPENS\t1\t/f\t/\text4\n";
        assert_eq!(parse_text(bad), Err(DarshanError::MissingHeader("nprocs")));
    }

    #[test]
    fn whitespace_fallback_when_no_tabs() {
        let ws = "# nprocs: 2\nPOSIX -1 9 POSIX_READS 4 /f / ext4\n";
        let t = parse_text(ws).unwrap();
        assert_eq!(t.records[0].ic("POSIX_READS"), 4);
    }

    #[test]
    fn negative_counter_values_parse() {
        // Darshan uses -1 for "undefined" in several counters.
        let s = "# nprocs: 1\nPOSIX\t0\t1\tPOSIX_STRIDE1_STRIDE\t-1\t/f\t/\text4\n";
        let t = parse_text(s).unwrap();
        assert_eq!(t.records[0].ic("POSIX_STRIDE1_STRIDE"), -1);
    }
}
