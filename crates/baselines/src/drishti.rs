//! Drishti: expert-trigger-based Darshan log analysis.
//!
//! Faithful to the published tool's character: a fixed battery of triggers
//! (30 here, as the paper states), each a hard-coded threshold over Darshan
//! counters with a static message and recommendation. Nine distinct issue
//! types are covered; *server load imbalance* and *low-level library*
//! misuse are outside its vocabulary, and several thresholds mis-fire by
//! design (the paper's critique):
//!
//! - misalignment is reported per direction purely by operation volume —
//!   no per-direction size check — so a one-sided misalignment flags both
//!   busy directions;
//! - the 10 % small-request threshold fires even when the absolute impact
//!   is negligible;
//! - messages are fixed strings with the trigger's numbers interpolated,
//!   never application-specific reasoning.

use darshan::counters::Module;
use darshan::derive::{lustre_summary, TraceSummary};
use darshan::DarshanTrace;
use simllm::Diagnosis;
use tracebench::thresholds as th;
use tracebench::IssueLabel;

/// One trigger hit: the rendered message plus the issue it maps to (if the
/// trigger corresponds to a TraceBench label; informational triggers don't).
#[derive(Debug, Clone)]
pub struct TriggerHit {
    /// Trigger identifier, e.g. `D07`.
    pub id: &'static str,
    /// Rendered message.
    pub message: String,
    /// Mapped issue label, when the trigger is diagnostic.
    pub issue: Option<IssueLabel>,
}

/// The Drishti analyser.
#[derive(Debug, Default, Clone, Copy)]
pub struct Drishti;

impl Drishti {
    /// Run all 30 triggers over a trace.
    pub fn triggers(&self, trace: &DarshanTrace) -> Vec<TriggerHit> {
        let s = TraceSummary::of(trace);
        let mut hits = Vec::new();
        let nprocs = s.nprocs;

        let posix = s.posix.clone().unwrap_or_default();
        let mpiio = s.mpiio.clone();
        let reads = posix.reads;
        let writes = posix.writes;

        let mut hit = |id: &'static str, issue: Option<IssueLabel>, message: String| {
            hits.push(TriggerHit { id, message, issue });
        };

        // D01/D02 — small requests (> 10 % below 1 MB).
        if reads > 0 && posix.small_read_fraction() > th::SMALL_FRACTION {
            hit(
                "D01",
                Some(IssueLabel::SmallRead),
                format!(
                    "Application issues a high number of small read requests (i.e., \
                     Small Read I/O Requests): {:.0}% of {} reads are smaller than 1 MB. \
                     Recommendation: consider buffering read operations into larger, \
                     more contiguous requests.",
                    posix.small_read_fraction() * 100.0,
                    reads
                ),
            );
        }
        if writes > 0 && posix.small_write_fraction() > th::SMALL_FRACTION {
            hit(
                "D02",
                Some(IssueLabel::SmallWrite),
                format!(
                    "Application issues a high number of small write requests (i.e., \
                     Small Write I/O Requests): {:.0}% of {} writes are smaller than 1 MB. \
                     Recommendation: consider buffering write operations into larger, \
                     more contiguous requests.",
                    posix.small_write_fraction() * 100.0,
                    writes
                ),
            );
        }
        // D03/D04 — misaligned requests. Direction chosen only by activity
        // (the quirk: no per-direction size evidence).
        if posix.misaligned_fraction() > th::MISALIGNED_FRACTION {
            if reads >= th::MIN_DIR_OPS {
                hit(
                    "D03",
                    Some(IssueLabel::MisalignedRead),
                    format!(
                        "Application has a high number of misaligned requests affecting \
                         reads (Misaligned Read Requests): {:.0}% of accesses are not \
                         aligned with the file system block boundary. Recommendation: \
                         align requests to the stripe boundary.",
                        posix.misaligned_fraction() * 100.0
                    ),
                );
            }
            if writes >= th::MIN_DIR_OPS {
                hit(
                    "D04",
                    Some(IssueLabel::MisalignedWrite),
                    format!(
                        "Application has a high number of misaligned requests affecting \
                         writes (Misaligned Write Requests): {:.0}% of accesses are not \
                         aligned with the file system block boundary. Recommendation: \
                         align requests to the stripe boundary.",
                        posix.misaligned_fraction() * 100.0
                    ),
                );
            }
        }
        // D05/D06 — random access patterns.
        if reads >= th::MIN_DIR_OPS && posix.seq_read_fraction() < th::SEQ_FRACTION_RANDOM {
            hit(
                "D05",
                Some(IssueLabel::RandomRead),
                format!(
                    "Application mostly uses non-sequential access patterns on reads \
                     (Random Access Patterns on Read): only {:.0}% sequential. \
                     Recommendation: consider reordering operations by offset.",
                    posix.seq_read_fraction() * 100.0
                ),
            );
        }
        if writes >= th::MIN_DIR_OPS && posix.seq_write_fraction() < th::SEQ_FRACTION_RANDOM {
            hit(
                "D06",
                Some(IssueLabel::RandomWrite),
                format!(
                    "Application mostly uses non-sequential access patterns on writes \
                     (Random Access Patterns on Write): only {:.0}% sequential. \
                     Recommendation: consider reordering operations by offset.",
                    posix.seq_write_fraction() * 100.0
                ),
            );
        }
        // D07 — shared file access.
        if nprocs > 1 && trace.shared_file_count(Module::Posix) > 0 {
            hit(
                "D07",
                Some(IssueLabel::SharedFileAccess),
                format!(
                    "Application uses shared files (Shared File Access): {} shared \
                     file(s) accessed by {} ranks. Recommendation: make sure the access \
                     pattern avoids lock contention.",
                    trace.shared_file_count(Module::Posix),
                    nprocs
                ),
            );
        }
        // D08 — high metadata time (absolute-seconds quirk alongside the
        // fractional rule).
        let meta_frac = posix.meta_time_fraction(s.run_time, nprocs);
        if meta_frac > th::META_TIME_FRACTION || posix.meta_time > 120.0 {
            hit(
                "D08",
                Some(IssueLabel::HighMetadataLoad),
                format!(
                    "Application spends a significant amount of time in metadata \
                     operations (High Metadata Load): {:.1}s across ranks ({:.0}% of \
                     runtime). Recommendation: consolidate files and avoid stat storms.",
                    posix.meta_time,
                    meta_frac * 100.0
                ),
            );
        }
        // D09 — too many opens (informational).
        if posix.opens > 50 * posix.files.max(1) as i64 {
            hit(
                "D09",
                None,
                format!(
                    "Application issues many open operations ({} opens over {} files).",
                    posix.opens, posix.files
                ),
            );
        }
        // D10 — too many stats (informational).
        if posix.stats > 100 * posix.files.max(1) as i64 {
            hit(
                "D10",
                None,
                format!("Application issues many stat operations ({}).", posix.stats),
            );
        }
        // D11 — redundant / repetitive reads (per-record reuse).
        let reuse = trace
            .records_for(Module::Posix)
            .filter_map(|r| {
                let bytes = r.ic("POSIX_BYTES_READ") as f64;
                let range = (r.ic("POSIX_MAX_BYTE_READ") + 1) as f64;
                (bytes > 0.0 && range > 0.0).then_some(bytes / range)
            })
            .fold(0.0f64, f64::max);
        if reuse > th::READ_REUSE_FACTOR {
            hit(
                "D11",
                Some(IssueLabel::RepetitiveRead),
                format!(
                    "Application re-reads the same data (Repetitive Data Access on \
                     Read): {reuse:.1}x the touched byte range. Recommendation: cache or \
                     stage the data in faster storage."
                ),
            );
        }
        // D12 — rank data imbalance.
        let rank_cv = per_rank_cv(trace);
        if rank_cv > th::RANK_CV || posix.rank_byte_imbalance() > th::RANK_RATIO {
            hit(
                "D12",
                Some(IssueLabel::RankLoadImbalance),
                format!(
                    "Application has data imbalance between ranks (Rank Load Imbalance): \
                     per-rank byte CV {:.2}, fastest/slowest ratio {:.1}. Recommendation: \
                     distribute I/O responsibility evenly across ranks.",
                    rank_cv,
                    posix.rank_byte_imbalance()
                ),
            );
        }
        // D13 — rank time imbalance (informational).
        if posix.variance_rank_time > 10.0 {
            hit(
                "D13",
                None,
                format!(
                    "Per-rank I/O time varies strongly (variance {:.1} s²).",
                    posix.variance_rank_time
                ),
            );
        }
        // D14/D15 — no collective MPI-IO.
        if let Some(m) = &mpiio {
            let r_total = m.indep_reads + m.coll_reads;
            if r_total >= th::MIN_MPIIO_OPS
                && m.collective_read_fraction() < th::COLLECTIVE_FRACTION
            {
                hit(
                    "D14",
                    Some(IssueLabel::NoCollectiveRead),
                    format!(
                        "Application uses MPI-IO but does not use collective reads \
                         (No Collective I/O on Read): {} independent vs {} collective. \
                         Recommendation: use collective operations (e.g. \
                         MPI_File_read_all).",
                        m.indep_reads, m.coll_reads
                    ),
                );
            }
            let w_total = m.indep_writes + m.coll_writes;
            if w_total >= th::MIN_MPIIO_OPS
                && m.collective_write_fraction() < th::COLLECTIVE_FRACTION
            {
                hit(
                    "D15",
                    Some(IssueLabel::NoCollectiveWrite),
                    format!(
                        "Application uses MPI-IO but does not use collective writes \
                         (No Collective I/O on Write): {} independent vs {} collective. \
                         Recommendation: use collective operations (e.g. \
                         MPI_File_write_all).",
                        m.indep_writes, m.coll_writes
                    ),
                );
            }
        }
        // D16 — multi-process without MPI-IO.
        if s.multi_process_without_mpi() && posix.total_ops() + posix.opens > 0 {
            hit(
                "D16",
                Some(IssueLabel::MultiProcessWithoutMpi),
                format!(
                    "Application runs {} processes but performs I/O without MPI-IO \
                     (Multi-Process Without MPI). Recommendation: use MPI-IO to \
                     coordinate I/O across processes.",
                    nprocs
                ),
            );
        }
        // D17 — read/write switches (informational).
        if posix.rw_switches > posix.total_ops() / 10 && posix.rw_switches > 0 {
            hit(
                "D17",
                None,
                format!(
                    "Application alternates frequently between reads and writes \
                     ({} switches).",
                    posix.rw_switches
                ),
            );
        }
        // D18 — excessive seeks (informational).
        if posix.seeks > posix.total_ops() / 2 && posix.seeks > 100 {
            hit(
                "D18",
                None,
                format!("Application issues many seeks ({}).", posix.seeks),
            );
        }
        // D19 — read-heavy / write-heavy note (informational).
        if posix.bytes_read > 10 * posix.bytes_written.max(1) {
            hit(
                "D19",
                None,
                "Workload is strongly read-dominant.".to_string(),
            );
        }
        // D20 — write-dominant note (informational).
        if posix.bytes_written > 10 * posix.bytes_read.max(1) {
            hit(
                "D20",
                None,
                "Workload is strongly write-dominant.".to_string(),
            );
        }
        // D21 — largest request still small (informational).
        if posix.max_read_time_size > 0 && posix.max_read_time_size < (1 << 20) && reads > 0 {
            hit(
                "D21",
                None,
                format!(
                    "Largest observed read request is only {} bytes.",
                    posix.max_read_time_size
                ),
            );
        }
        // D22 — many files (informational).
        if posix.files > 500 {
            hit(
                "D22",
                None,
                format!("Application touches many files ({}).", posix.files),
            );
        }
        // D23 — fsync-heavy (informational).
        if posix.syncs > 100 {
            hit(
                "D23",
                None,
                format!("Application issues many sync operations ({}).", posix.syncs),
            );
        }
        // D24 — stdio streams observed (informational only: Drishti's
        // vocabulary does not include the low-level-library issue).
        if let Some(st) = &s.stdio {
            if st.bytes_read + st.bytes_written > (10 << 20) {
                hit(
                    "D24",
                    None,
                    format!(
                        "Sizeable STDIO traffic observed ({} bytes).",
                        st.bytes_read + st.bytes_written
                    ),
                );
            }
        }
        // D25 — stripe note (informational; no server-imbalance diagnosis).
        if let Some(l) = lustre_summary(trace) {
            if l.mean_stripe_width() < 2.0 {
                hit(
                    "D25",
                    None,
                    format!(
                        "Files use a Lustre stripe count of {:.0}.",
                        l.mean_stripe_width()
                    ),
                );
            }
            // D26 — stripe size note (informational).
            if let Some(sz) = l.stripe_sizes.first() {
                hit("D26", None, format!("Lustre stripe size is {sz} bytes."));
            }
        }
        // D27 — memory alignment (informational).
        if posix.mem_not_aligned > posix.total_ops() / 5 && posix.total_ops() > 0 {
            hit(
                "D27",
                None,
                format!(
                    "{} accesses are not aligned in memory.",
                    posix.mem_not_aligned
                ),
            );
        }
        // D28 — long runtime with little I/O (informational).
        if s.run_time > 300.0 && s.total_bytes() < (1 << 20) {
            hit(
                "D28",
                None,
                "Long-running job with negligible I/O volume.".to_string(),
            );
        }
        // D29 — no read activity (informational).
        if reads == 0 && writes > 0 {
            hit(
                "D29",
                None,
                "Write-only workload (no reads recorded).".to_string(),
            );
        }
        // D30 — no write activity (informational).
        if writes == 0 && reads > 0 {
            hit(
                "D30",
                None,
                "Read-only workload (no writes recorded).".to_string(),
            );
        }

        hits
    }

    /// Produce a full diagnosis report.
    pub fn diagnose(&self, trace: &DarshanTrace) -> Diagnosis {
        let hits = self.triggers(trace);
        let mut text = String::from("Drishti analysis report\n=======================\n\n");
        let mut issues = Vec::new();
        for h in &hits {
            // Quote the interpolated counters as an inline evidence clause.
            let msg = if h.message.contains("): ") && h.message.contains(". Recommendation:") {
                h.message.replacen("): ", "): (data: ", 1).replacen(
                    ". Recommendation:",
                    "). Recommendation:",
                    1,
                )
            } else {
                h.message.clone()
            };
            text.push_str(&format!("- [{}] {msg}\n\n", h.id));
            if let Some(issue) = h.issue {
                if !issues.contains(&issue) {
                    issues.push(issue);
                }
            }
        }
        if hits.is_empty() {
            text.push_str("No triggers fired: no issues detected.\n");
        }
        Diagnosis {
            tool: "drishti".to_string(),
            text,
            issues,
            references: Vec::new(),
        }
    }
}

fn per_rank_cv(trace: &DarshanTrace) -> f64 {
    let mut by_rank: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    for r in trace.records_for(Module::Posix) {
        if r.rank >= 0 {
            *by_rank.entry(r.rank).or_insert(0) +=
                r.ic("POSIX_BYTES_READ") + r.ic("POSIX_BYTES_WRITTEN");
        }
    }
    if by_rank.len() < 2 {
        return 0.0;
    }
    let vals: Vec<f64> = by_rank.values().map(|&v| v as f64).collect();
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracebench::TraceBench;

    #[test]
    fn drishti_finds_small_io() {
        let tb = TraceBench::generate();
        let d = Drishti.diagnose(&tb.get("sb01_small_io").unwrap().trace);
        assert!(d.issues.contains(&IssueLabel::SmallRead));
        assert!(d.issues.contains(&IssueLabel::SmallWrite));
        assert!(d.text.contains("[D01]"));
    }

    #[test]
    fn drishti_cannot_see_server_imbalance() {
        let tb = TraceBench::generate();
        let d = Drishti.diagnose(&tb.get("sb10_server_hotspot").unwrap().trace);
        assert!(!d.issues.contains(&IssueLabel::ServerLoadImbalance));
        // It does leave an informational stripe note, but no diagnosis.
        assert!(d.text.contains("stripe count"));
    }

    #[test]
    fn drishti_cannot_see_low_level_library() {
        let tb = TraceBench::generate();
        let d = Drishti.diagnose(&tb.get("sb07_stdio_heavy").unwrap().trace);
        assert!(!d.issues.contains(&IssueLabel::LowLevelLibraryRead));
        assert!(!d.issues.contains(&IssueLabel::LowLevelLibraryWrite));
    }

    #[test]
    fn misalignment_quirk_flags_both_busy_directions() {
        // ra_e2e_fixed plants MisalignedWrite only; its reads are large,
        // aligned and above the op gate, so Drishti's volume-only heuristic
        // also flags reads — a false positive by construction.
        let tb = TraceBench::generate();
        let d = Drishti.diagnose(&tb.get("ra_e2e_fixed").unwrap().trace);
        assert!(d.issues.contains(&IssueLabel::MisalignedWrite));
        assert!(
            d.issues.contains(&IssueLabel::MisalignedRead),
            "quirk should misfire"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let tb = TraceBench::generate();
        let t = &tb.get("ra_amrex").unwrap().trace;
        assert_eq!(Drishti.diagnose(t).text, Drishti.diagnose(t).text);
    }

    #[test]
    fn recall_reasonable_but_bounded_across_suite() {
        let tb = TraceBench::generate();
        let mut hit = 0usize;
        let mut total = 0usize;
        for e in &tb.entries {
            let d = Drishti.diagnose(&e.trace);
            let found = d.issue_set();
            for l in e.spec.labels {
                total += 1;
                if found.contains(l) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / total as f64;
        // Covers everything except Srv (24) and LL (2) labels, so recall
        // should sit in the 0.7–0.9 band.
        assert!(recall > 0.65 && recall < 0.92, "recall {recall}");
    }
}
