//! ION: direct LLM prompting over the raw trace.
//!
//! ION (HotStorage'24) is the proof-of-concept predecessor of IOAgent: it
//! engineers a single prompt containing the parsed Darshan log and asks the
//! backbone model for a diagnosis. No retrieval, no pre-processing beyond
//! `darshan-parser`, no merging — so the diagnosis quality tracks the
//! backbone model's context limits, arithmetic reliability, misconceptions,
//! and hallucinations directly (paper §II-B, §III).

use darshan::DarshanTrace;
use simllm::{CompletionRequest, Diagnosis, LanguageModel};

/// The ION baseline bound to a backbone model.
pub struct Ion<'m> {
    model: &'m dyn LanguageModel,
}

impl<'m> Ion<'m> {
    /// Bind ION to a backbone model (the paper uses gpt-4o).
    pub fn new(model: &'m dyn LanguageModel) -> Self {
        Ion { model }
    }

    /// Build ION's engineered prompt for a trace.
    pub fn prompt(trace: &DarshanTrace) -> String {
        let raw = darshan::write::write_text(trace);
        format!(
            "### TASK: diagnose\n\
             You are given the complete darshan-parser output of an HPC application run. \
             Check the I/O details thoroughly: operation counts, request sizes, access \
             patterns, alignment, metadata activity, interfaces used, and striping. \
             Identify every I/O performance issue and justify each with data from the \
             trace.\n\n\
             ## TRACE\n{raw}"
        )
    }

    /// Produce the diagnosis for one trace.
    pub fn diagnose(&self, trace: &DarshanTrace) -> Diagnosis {
        let req = CompletionRequest::new(
            "You are an expert in HPC I/O performance analysis.",
            Self::prompt(trace),
        );
        let completion = self.model.complete(&req);
        let mut d = Diagnosis::from_text(format!("ion-{}", self.model.name()), completion.text);
        d.tool = "ion".to_string();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::SimLlm;
    use tracebench::{IssueLabel, TraceBench};

    #[test]
    fn ion_diagnoses_simple_trace_reasonably() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("gpt-4o");
        let ion = Ion::new(&model);
        let d = ion.diagnose(&tb.get("sb01_small_io").unwrap().trace);
        // Small I/O is the easiest rule; on a small trace ION should find it.
        assert!(
            d.issues.contains(&IssueLabel::SmallWrite) || d.issues.contains(&IssueLabel::SmallRead),
            "{}",
            d.text
        );
    }

    #[test]
    fn ion_degrades_on_huge_traces() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("gpt-4o");
        let ion = Ion::new(&model);
        // mdtest-hard: ~40k raw lines — way beyond the effective window.
        let entry = tb.get("io500_mdtest_hard_1").unwrap();
        let d = ion.diagnose(&entry.trace);
        let gt: std::collections::BTreeSet<_> = entry.spec.labels.iter().copied().collect();
        let found = d.issue_set();
        let recall = found.intersection(&gt).count() as f64 / gt.len() as f64;
        assert!(recall < 1.0, "truncation should cost ION something");
    }

    #[test]
    fn ion_misses_more_than_reference_across_suite() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("gpt-4o");
        let ion = Ion::new(&model);
        let mut hit = 0usize;
        let mut total = 0usize;
        for e in &tb.entries {
            let d = ion.diagnose(&e.trace);
            let found = d.issue_set();
            for l in e.spec.labels {
                total += 1;
                if found.contains(l) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.25 && recall < 0.75, "ION recall {recall}");
    }

    #[test]
    fn ion_output_deterministic() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("llama-3.1-70b");
        let ion = Ion::new(&model);
        let t = &tb.get("ra_amrex").unwrap().trace;
        assert_eq!(ion.diagnose(t).text, ion.diagnose(t).text);
    }
}
