//! Baseline diagnosis tools the paper compares IOAgent against.
//!
//! - [`drishti`]: a reimplementation of Drishti's trigger-based analysis —
//!   30 heuristic triggers over Darshan counters with hard-coded thresholds
//!   and fixed message/recommendation text, covering nine distinct issue
//!   types (notably *not* server load imbalance or low-level-library
//!   misuse, and with the threshold quirks the paper discusses).
//! - [`ion`]: the ION strategy — stuff the whole `darshan-parser` output
//!   into one engineered prompt and let the backbone LLM produce the
//!   diagnosis directly, inheriting all of the model's failure modes.

pub mod drishti;
pub mod ion;

pub use drishti::Drishti;
pub use ion::Ion;
