//! First-wins hedging is *cooperative cancellation*, not abandonment:
//! when the hedge beats a straggling primary, the primary attempt must
//! wake from its simulated latency sleep, record `cancelled=true` on its
//! own `llm.call` span, and commit no usage. This test installs the
//! in-memory tracer (fine detail, so per-LLM-call spans are real) and
//! inspects the spans the race actually left behind.

use ioagentd::{HedgePolicy, ResilienceCounters, ResiliencePolicy, ResilientLlm};
use simllm::{CompletionRequest, FaultPlan, LanguageModel, LatencyProfile, SimLlm, TailSpec};
use std::time::{Duration, Instant};

/// Hedge attempt lane (mirrors the private constant in
/// `ioagentd::resilience`; pinned here so a lane renumbering is caught).
const HEDGE_LANE: u32 = 0x8000_0000;

fn request() -> CompletionRequest {
    CompletionRequest::new(
        "You are an HPC I/O expert.",
        "### TASK: diagnose\nEVIDENCE nprocs=8\nEVIDENCE posix.writes=1000",
    )
}

#[test]
fn losing_attempt_is_cancelled_and_its_span_says_so() {
    // Process-global, set-once: installed before any span is recorded.
    assert!(
        ioobserve::init_tracer(ioobserve::Tracer::memory().with_fine_detail()),
        "tracer already installed; this test must own the process global"
    );

    // A plan where lane 0 straggles for seconds but the hedge lane is
    // fast: tail fires on half the draws with a ~20000x multiplier over
    // a 200µs base. The right salt is found deterministically.
    let plan = FaultPlan::new()
        .with_profile(LatencyProfile::flat(Duration::from_micros(200)))
        .with_tail(TailSpec {
            probability: 0.5,
            lognormal_sigma: 0.1,
            median_multiplier: 20_000.0,
            pareto_alpha: 0.0,
            pareto_weight: 0.0,
            max_multiplier: 50_000.0,
        });
    let model = || SimLlm::new("gpt-4o-mini").with_fault_plan(plan.clone());
    let probe = model();
    let salt = (0..4096)
        .find(|&s| {
            let slow = probe.preview_attempt(&request().with_salt(s).with_attempt(0));
            let fast = probe.preview_attempt(&request().with_salt(s).with_attempt(HEDGE_LANE));
            slow.fault.is_none()
                && fast.fault.is_none()
                && slow.latency > Duration::from_secs(1)
                && fast.latency < Duration::from_millis(5)
        })
        .expect("no salt makes lane 0 straggle while the hedge lane is fast");
    let req = request().with_salt(salt);

    let counters = ResilienceCounters::detached();
    let resilient = ResilientLlm::new(
        model(),
        ResiliencePolicy::default().hedged(HedgePolicy {
            quantile: 0.95,
            min_delay: Duration::from_millis(2),
        }),
        None,
        counters.clone(),
    );
    let started = Instant::now();
    let delivered = resilient.complete(&req);
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "the straggling primary was never cancelled ({:?})",
        started.elapsed()
    );
    assert!(resilient.take_failure().is_none());
    assert_eq!(counters.hedges.get(), 1);
    assert_eq!(counters.hedge_wins.get(), 1);
    // Exactly one delivery committed usage — the winner; the cancelled
    // loser charged nothing.
    assert_eq!(resilient.usage().calls, 1);

    // The race left exactly two llm.call spans: the hedge-lane winner
    // (usage attrs, no cancellation) and the lane-0 loser marked
    // cancelled=true.
    let spans = ioobserve::tracer().drain_memory();
    let calls: Vec<_> = spans.iter().filter(|s| s.name == "llm.call").collect();
    assert_eq!(calls.len(), 2, "expected winner + loser, got {calls:#?}");
    let winner = calls
        .iter()
        .find(|s| s.attr("attempt") == Some(&(HEDGE_LANE.to_string())))
        .expect("no span on the hedge lane");
    assert_eq!(winner.attr("cancelled"), None);
    assert!(
        winner.attr("task").is_some(),
        "winner must carry usage attrs"
    );
    let loser = calls
        .iter()
        .find(|s| s.attr("attempt").is_none())
        .expect("no span on the primary lane");
    assert_eq!(
        loser.attr("cancelled"),
        Some("true"),
        "the losing attempt must record its cancellation: {loser:#?}"
    );
    assert!(
        loser.attr("task").is_none(),
        "a cancelled attempt commits nothing"
    );

    // And first-wins is byte-identical to an unhedged, fault-free run
    // (checked after the drain so the reference run's own span does not
    // pollute the race's trace).
    assert_eq!(
        delivered.text,
        SimLlm::new("gpt-4o-mini").complete(&req).text
    );
}
