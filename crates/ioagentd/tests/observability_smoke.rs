//! End-to-end observability smoke: drive the real `ioagentd` binary with
//! `--trace-dir`, run a 16-job batch plus in-band `{"stats": true}` and
//! `{"metrics": true}` probes, then assert that
//!
//! - the emitted span NDJSON parses and decomposes >= 95% of every job's
//!   wall time into named `stage.*` spans,
//! - the metrics probe reports per-stage histogram quantiles,
//! - error replies carry stable `error_kind` values,
//! - the `trace-report` subcommand folds the trace dir into a table.
//!
//! The trace file and rendered report are copied to `target/obs-smoke/`
//! so CI can upload them as artifacts. This is the test CI runs as its
//! observability smoke job.

use serde_json::{json, Value};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ioagentd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_daemon(args: &[&str], input: &str) -> Vec<Value> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ioagentd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ioagentd");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("daemon exit");
    assert!(
        output.status.success(),
        "daemon exited with {:?}",
        output.status
    );
    String::from_utf8(output.stdout)
        .expect("utf-8 stdout")
        .lines()
        .map(|l| serde_json::from_str(l).expect("response line is JSON"))
        .collect()
}

/// 16 jobs over the seed corpus (cycling if the corpus is smaller), with
/// distinct ids so none is a cache hit.
fn request_lines(n: usize) -> String {
    let suite = tracebench::TraceBench::generate();
    let mut out = String::new();
    for (i, entry) in suite.entries.iter().cycle().take(n).enumerate() {
        let text = darshan::write::write_text(&entry.trace);
        let line = json!({
            "id": format!("job-{i}-{}", entry.spec.id),
            "trace": text,
            "model": if i % 2 == 0 { "gpt-4o-mini" } else { "gpt-4o" },
        });
        out.push_str(&serde_json::to_string(&line).unwrap());
        out.push('\n');
    }
    out
}

/// Where CI picks up the artifacts.
fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/obs-smoke");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

const JOBS: usize = 16;

#[test]
fn traced_batch_decomposes_job_time_and_serves_metrics() {
    let traces = TempDir::new("obs-traces");
    let trace_arg = traces.0.to_str().unwrap();

    let mut input = request_lines(JOBS);
    input.push_str("not even json\n");
    input.push_str("{\"id\": \"probe\", \"stats\": true}\n");
    input.push_str("{\"id\": \"mprobe\", \"metrics\": true}\n");

    let responses = run_daemon(
        &[
            "--workers",
            "4",
            "--trace-dir",
            trace_arg,
            "--trace-detail",
            "fine",
        ],
        &input,
    );
    assert_eq!(responses.len(), JOBS + 3, "one response per input line");

    // The 16 jobs all completed uncached.
    for r in &responses[..JOBS] {
        assert!(r.get("error").is_none(), "unexpected error: {r:?}");
        assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
    }

    // The malformed line is classified with a stable error_kind.
    let err = &responses[JOBS];
    assert!(err.get("error").is_some());
    assert_eq!(
        err.get("error_kind").and_then(Value::as_str),
        Some("malformed_json")
    );

    // Stats probe: all jobs counted, queue drained by probe time.
    let stats = responses[JOBS + 1].get("stats").expect("stats response");
    assert_eq!(
        stats.get("jobs_completed").and_then(Value::as_i64),
        Some(JOBS as i64)
    );
    assert_eq!(stats.get("queue_depth").and_then(Value::as_i64), Some(0));

    // Metrics probe: per-stage histogram quantiles are reported.
    let metrics = responses[JOBS + 2]
        .get("metrics")
        .expect("metrics response");
    let svc_hist = metrics
        .get("service")
        .and_then(|s| s.get("histograms"))
        .expect("service histograms");
    for name in ["service.queue_wait_ns", "service.exec_ns"] {
        let h = svc_hist
            .get(name)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(h.get("count").and_then(Value::as_i64), Some(JOBS as i64));
        let p50 = h.get("p50_ns").and_then(Value::as_i64).unwrap();
        let p99 = h.get("p99_ns").and_then(Value::as_i64).unwrap();
        assert!(p50 <= p99, "{name}: p50 {p50} > p99 {p99}");
    }
    let proc_hist = metrics
        .get("process")
        .and_then(|p| p.get("histograms"))
        .expect("process histograms");
    for name in ["stage.llm_ns", "stage.retrieve_ns", "stage.merge_ns"] {
        let h = proc_hist
            .get(name)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert!(h.get("count").and_then(Value::as_i64).unwrap() > 0);
        assert!(h.get("p99_ns").is_some() && h.get("p999_ns").is_some());
    }
    assert!(
        metrics
            .get("process")
            .and_then(|p| p.get("counters"))
            .and_then(|c| c.get("llm.calls"))
            .and_then(Value::as_i64)
            .unwrap()
            > 0
    );

    // The daemon wrote one spans file; it parses and covers the jobs.
    let span_files: Vec<PathBuf> = std::fs::read_dir(&traces.0)
        .expect("read trace dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("spans-") && n.ends_with(".ndjson"))
        })
        .collect();
    assert_eq!(span_files.len(), 1, "exactly one daemon process traced");
    let ndjson = std::fs::read_to_string(&span_files[0]).expect("read spans");
    let records = ioobserve::parse_spans(&ndjson).expect("spans parse");
    let report = ioobserve::fold_spans(&records);
    assert_eq!(report.jobs, JOBS as u64, "one root job span per job");
    assert!(
        report.coverage_min >= 0.95,
        "stage spans must attribute >= 95% of every job's wall time, \
         got min {:.3} (mean {:.3})",
        report.coverage_min,
        report.coverage_mean
    );
    let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "stage.queue_wait",
        "stage.preprocess",
        "stage.fragments",
        "stage.fragment",
        "stage.retrieve",
        "stage.llm",
        "stage.merge",
        "stage.render",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // The connection span is there too, with its accounting attrs.
    let conn = records
        .iter()
        .find(|r| r.name == "conn")
        .expect("conn span");
    assert!(conn.attr("requests").is_some() && conn.attr("bytes").is_some());

    // `trace-report` over the whole directory renders the same fold.
    let out = Command::new(env!("CARGO_BIN_EXE_ioagentd"))
        .args(["trace-report", trace_arg])
        .output()
        .expect("run trace-report");
    assert!(out.status.success(), "trace-report failed: {out:?}");
    let table = String::from_utf8(out.stdout).expect("utf-8 table");
    assert!(table.contains(&format!("jobs: {JOBS}")), "table:\n{table}");
    assert!(table.contains("stage.llm"), "table:\n{table}");

    // Leave the evidence where CI can upload it.
    let artifacts = artifact_dir();
    std::fs::copy(&span_files[0], artifacts.join("spans.ndjson")).expect("copy spans");
    std::fs::write(artifacts.join("trace-report.txt"), &table).expect("write report");
}
