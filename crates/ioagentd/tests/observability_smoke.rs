//! End-to-end observability smoke: drive the real `ioagentd` binary with
//! `--trace-dir`, run a 16-job batch plus in-band `{"stats": true}` and
//! `{"metrics": true}` probes, then assert that
//!
//! - the emitted span NDJSON parses and decomposes >= 95% of every job's
//!   wall time into named `stage.*` spans,
//! - the metrics probe reports per-stage histogram quantiles, lifetime
//!   and windowed, plus jobs/s / cache-hit rates,
//! - caller-supplied `trace_id`s are echoed (and stamped on root spans)
//!   while requests without one get a daemon-generated id,
//! - error replies carry stable `error_kind` values,
//! - the `trace-report` subcommand folds the trace dir into a table,
//! - tail-based sampling (`--trace-sample tail:…`) never changes the
//!   diagnosis output (byte-identical replies) while pruning fine spans.
//!
//! The trace file and rendered report are copied to `target/obs-smoke/`
//! so CI can upload them as artifacts. This is the test CI runs as its
//! observability smoke job.

use serde_json::{json, Value};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ioagentd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_daemon_raw(args: &[&str], input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ioagentd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ioagentd");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("daemon exit");
    assert!(
        output.status.success(),
        "daemon exited with {:?}",
        output.status
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

fn run_daemon(args: &[&str], input: &str) -> Vec<Value> {
    run_daemon_raw(args, input)
        .lines()
        .map(|l| serde_json::from_str(l).expect("response line is JSON"))
        .collect()
}

/// `n` jobs over the seed corpus (cycling if the corpus is smaller), with
/// distinct ids so none is a cache hit. Every request carries an explicit
/// `trace_id` (`trace-{i}`) so replies are deterministic across runs.
fn request_lines(n: usize) -> String {
    let suite = tracebench::TraceBench::generate();
    let mut out = String::new();
    for (i, entry) in suite.entries.iter().cycle().take(n).enumerate() {
        let text = darshan::write::write_text(&entry.trace);
        let line = json!({
            "id": format!("job-{i}-{}", entry.spec.id),
            "trace": text,
            "model": if i % 2 == 0 { "gpt-4o-mini" } else { "gpt-4o" },
            "trace_id": format!("trace-{i}"),
        });
        out.push_str(&serde_json::to_string(&line).unwrap());
        out.push('\n');
    }
    out
}

/// Where CI picks up the artifacts.
fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/obs-smoke");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

const JOBS: usize = 16;

#[test]
fn traced_batch_decomposes_job_time_and_serves_metrics() {
    let traces = TempDir::new("obs-traces");
    let trace_arg = traces.0.to_str().unwrap();

    let suite = tracebench::TraceBench::generate();
    let mut input = request_lines(JOBS);
    // One job *without* a trace_id: the daemon must generate one.
    let untagged = json!({
        "id": "job-untagged",
        "trace": darshan::write::write_text(&suite.entries[0].trace),
        "model": "gpt-4o",
    });
    input.push_str(&serde_json::to_string(&untagged).unwrap());
    input.push('\n');
    input.push_str("not even json\n");
    input.push_str("{\"id\": \"probe\", \"stats\": true}\n");
    input.push_str("{\"id\": \"mprobe\", \"metrics\": true}\n");

    // A streaming latency profile (2 ms TTFT per LLM call, no tail, no
    // faults) keeps each job's wall time dominated by *attributed* stage
    // work: without it, sub-millisecond CPU-only jobs make the >= 95%
    // coverage gate below hostage to scheduler noise on loaded runners.
    let responses = run_daemon(
        &[
            "--workers",
            "4",
            "--trace-dir",
            trace_arg,
            "--trace-detail",
            "fine",
            "--llm-faults",
            "ttft=2ms,tps=2000000",
        ],
        &input,
    );
    assert_eq!(responses.len(), JOBS + 4, "one response per input line");

    // The 16 tagged jobs all completed uncached, echoing their trace_id.
    for (i, r) in responses[..JOBS].iter().enumerate() {
        assert!(r.get("error").is_none(), "unexpected error: {r:?}");
        assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
        assert_eq!(
            r.get("trace_id").and_then(Value::as_str),
            Some(format!("trace-{i}").as_str()),
            "caller-supplied trace_id must be echoed: {r:?}"
        );
    }

    // The untagged job got a daemon-generated trace id (seed-seq form).
    let generated = responses[JOBS]
        .get("trace_id")
        .and_then(Value::as_str)
        .expect("generated trace_id");
    assert!(
        generated.contains('-') && !generated.starts_with("trace-"),
        "daemon-generated trace_id looks wrong: {generated:?}"
    );

    // The malformed line is classified with a stable error_kind.
    let err = &responses[JOBS + 1];
    assert!(err.get("error").is_some());
    assert_eq!(
        err.get("error_kind").and_then(Value::as_str),
        Some("malformed_json")
    );

    // Stats probe: all jobs counted, queue drained by probe time.
    let stats = responses[JOBS + 2].get("stats").expect("stats response");
    assert_eq!(
        stats.get("jobs_completed").and_then(Value::as_i64),
        Some(JOBS as i64 + 1)
    );
    assert_eq!(stats.get("queue_depth").and_then(Value::as_i64), Some(0));

    // Metrics probe: per-stage histogram quantiles are reported.
    let metrics = responses[JOBS + 3]
        .get("metrics")
        .expect("metrics response");
    let svc_hist = metrics
        .get("service")
        .and_then(|s| s.get("histograms"))
        .expect("service histograms");
    for name in ["service.queue_wait_ns", "service.exec_ns"] {
        let h = svc_hist
            .get(name)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(
            h.get("count").and_then(Value::as_i64),
            Some(JOBS as i64 + 1)
        );
        let p50 = h.get("p50_ns").and_then(Value::as_i64).unwrap();
        let p99 = h.get("p99_ns").and_then(Value::as_i64).unwrap();
        assert!(p50 <= p99, "{name}: p50 {p50} > p99 {p99}");

        // Windowed view: the batch just ran, so the longest window holds
        // every sample and reports real (non-null) quantiles.
        let windows = h.get("windows").and_then(Value::as_array).expect("windows");
        assert_eq!(windows.len(), 2, "{name}: want [10s, 60s] windows");
        let last = windows.last().unwrap();
        assert_eq!(last.get("window_s").and_then(Value::as_f64), Some(60.0));
        assert_eq!(
            last.get("count").and_then(Value::as_i64),
            Some(JOBS as i64 + 1),
            "{name}: 60s window must hold the whole batch"
        );
        assert!(
            last.get("p99_ns").and_then(Value::as_i64).unwrap() > 0,
            "{name}: windowed p99 must be a real value"
        );
    }

    // Top-level windowed service metadata: offered windows, windowed
    // counters, and derived rates.
    let service = metrics.get("service").expect("service section");
    let window_s: Vec<f64> = service
        .get("window_s")
        .and_then(Value::as_array)
        .expect("window_s")
        .iter()
        .filter_map(Value::as_f64)
        .collect();
    assert_eq!(window_s, vec![10.0, 60.0]);
    let jobs_60s = service
        .get("counter_windows")
        .and_then(|c| c.get("service.jobs_completed"))
        .and_then(Value::as_array)
        .expect("windowed jobs_completed")
        .last()
        .and_then(Value::as_i64);
    assert_eq!(jobs_60s, Some(JOBS as i64 + 1));
    let rates = service
        .get("rates")
        .and_then(Value::as_array)
        .expect("rates");
    let last_rate = rates.last().expect("60s rate row");
    assert!(
        last_rate.get("jobs_per_s").and_then(Value::as_f64).unwrap() > 0.0,
        "jobs/s over 60s must be positive right after a batch"
    );
    // The malformed line was answered (and counted into service.errors)
    // before this probe, so the errors/s window must see it.
    assert!(
        last_rate
            .get("errors_per_s")
            .and_then(Value::as_f64)
            .unwrap()
            > 0.0,
        "the malformed line must show up in errors/s: {last_rate:?}"
    );
    let proc_hist = metrics
        .get("process")
        .and_then(|p| p.get("histograms"))
        .expect("process histograms");
    for name in ["stage.llm_ns", "stage.retrieve_ns", "stage.merge_ns"] {
        let h = proc_hist
            .get(name)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert!(h.get("count").and_then(Value::as_i64).unwrap() > 0);
        assert!(h.get("p99_ns").is_some() && h.get("p999_ns").is_some());
    }
    assert!(
        metrics
            .get("process")
            .and_then(|p| p.get("counters"))
            .and_then(|c| c.get("llm.calls"))
            .and_then(Value::as_i64)
            .unwrap()
            > 0
    );

    // The daemon wrote one spans file; it parses and covers the jobs.
    let span_files: Vec<PathBuf> = std::fs::read_dir(&traces.0)
        .expect("read trace dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("spans-") && n.ends_with(".ndjson"))
        })
        .collect();
    assert_eq!(span_files.len(), 1, "exactly one daemon process traced");
    let ndjson = std::fs::read_to_string(&span_files[0]).expect("read spans");
    let records = ioobserve::parse_spans(&ndjson).expect("spans parse");
    let report = ioobserve::fold_spans(&records);
    assert_eq!(report.jobs, JOBS as u64 + 1, "one root job span per job");

    // Root job spans carry the trace_id attr — caller-supplied or
    // daemon-generated — so multi-process span files can be correlated.
    let root_trace_ids: Vec<&str> = records
        .iter()
        .filter(|r| r.parent == 0 && r.name == "job")
        .filter_map(|r| r.attr("trace_id"))
        .collect();
    assert_eq!(root_trace_ids.len(), JOBS + 1, "every root is tagged");
    assert!(root_trace_ids.contains(&"trace-0"), "{root_trace_ids:?}");
    assert!(root_trace_ids.contains(&generated), "{root_trace_ids:?}");
    assert!(
        report.coverage_min >= 0.95,
        "stage spans must attribute >= 95% of every job's wall time, \
         got min {:.3} (mean {:.3})",
        report.coverage_min,
        report.coverage_mean
    );
    let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "stage.queue_wait",
        "stage.preprocess",
        "stage.fragments",
        "stage.fragment",
        "stage.retrieve",
        "stage.llm",
        "stage.merge",
        "stage.render",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // The connection span is there too, with its accounting attrs.
    let conn = records
        .iter()
        .find(|r| r.name == "conn")
        .expect("conn span");
    assert!(conn.attr("requests").is_some() && conn.attr("bytes").is_some());

    // `trace-report` over the whole directory renders the same fold.
    let out = Command::new(env!("CARGO_BIN_EXE_ioagentd"))
        .args(["trace-report", trace_arg])
        .output()
        .expect("run trace-report");
    assert!(out.status.success(), "trace-report failed: {out:?}");
    let table = String::from_utf8(out.stdout).expect("utf-8 table");
    assert!(
        table.contains(&format!("jobs: {}", JOBS + 1)),
        "table:\n{table}"
    );
    assert!(table.contains("stage.llm"), "table:\n{table}");

    // `--slowest` appends a ranked listing with per-job critical paths.
    let out = Command::new(env!("CARGO_BIN_EXE_ioagentd"))
        .args(["trace-report", trace_arg, "--slowest", "3"])
        .output()
        .expect("run trace-report --slowest");
    assert!(
        out.status.success(),
        "trace-report --slowest failed: {out:?}"
    );
    let listing = String::from_utf8(out.stdout).expect("utf-8 listing");
    assert!(
        listing.contains(&format!("slowest 3 of {} jobs", JOBS + 1)),
        "listing:\n{listing}"
    );
    assert!(listing.contains("trace trace-"), "listing:\n{listing}");

    // Leave the evidence where CI can upload it.
    let artifacts = artifact_dir();
    std::fs::copy(&span_files[0], artifacts.join("spans.ndjson")).expect("copy spans");
    std::fs::write(artifacts.join("trace-report.txt"), &table).expect("write report");
}

/// Render a response stream with its scheduling-dependent fields
/// (`exec_ms`, `queue_wait_ms`, `worker`) removed: everything left —
/// issues, text, token and cost accounting, trace_id echo — is
/// deterministic and must be byte-identical across runs.
fn strip_timing(stdout: &str) -> String {
    let mut out = String::new();
    for line in stdout.lines() {
        let v: Value = serde_json::from_str(line).expect("response line is JSON");
        let mut kept = serde_json::Map::new();
        for (k, val) in v.as_object().expect("response is an object") {
            if k != "exec_ms" && k != "queue_wait_ms" && k != "worker" {
                kept.insert(k.clone(), val.clone());
            }
        }
        out.push_str(&serde_json::to_string(&Value::Object(kept)).unwrap());
        out.push('\n');
    }
    out
}

/// Tail-based sampling must never change what clients see: the same
/// batch run untraced and run with `--trace-sample tail:10000ms` produces
/// byte-identical diagnosis output (requests pin their `trace_id`s, so
/// everything but the wall-clock timing fields is deterministic).
/// Meanwhile the span file keeps every coarse job/stage span but drops
/// the fine detail of fast jobs — and a `tail:0ms` run (every job is
/// "slow") keeps the fine spans.
#[test]
fn tail_sampling_never_changes_replies_and_prunes_fine_spans() {
    const N: usize = 8;
    let input = request_lines(N);

    let plain = run_daemon_raw(&["--workers", "2"], &input);

    let traces = TempDir::new("obs-tail");
    let trace_arg = traces.0.to_str().unwrap();
    let sampled = run_daemon_raw(
        &[
            "--workers",
            "2",
            "--trace-dir",
            trace_arg,
            "--trace-sample",
            "tail:10000ms",
        ],
        &input,
    );
    assert_eq!(
        strip_timing(&plain),
        strip_timing(&sampled),
        "tail sampling changed the diagnosis output byte-for-byte"
    );

    let read_spans = |dir: &std::path::Path| {
        let file = std::fs::read_dir(dir)
            .expect("read trace dir")
            .flatten()
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("spans-") && n.ends_with(".ndjson"))
            })
            .expect("spans file");
        ioobserve::parse_spans(&std::fs::read_to_string(file).expect("read spans"))
            .expect("spans parse")
    };

    // No job takes 10s, so every job's fine detail is dropped — but the
    // coarse job/stage skeleton survives for all of them.
    let records = read_spans(&traces.0);
    let jobs = records
        .iter()
        .filter(|r| r.parent == 0 && r.name == "job")
        .count();
    assert_eq!(jobs, N, "coarse job roots are always kept");
    assert!(
        records.iter().any(|r| r.name == "stage.merge"),
        "coarse stage spans are always kept"
    );
    assert!(
        !records.iter().any(|r| r.name == "llm.call"),
        "fine spans of fast jobs must be dropped under tail:10000ms"
    );

    // The opposite extreme: a 0ms threshold keeps every job's fine spans.
    let keep_all = TempDir::new("obs-tail-all");
    let _ = run_daemon_raw(
        &[
            "--workers",
            "2",
            "--trace-dir",
            keep_all.0.to_str().unwrap(),
            "--trace-sample",
            "tail:0ms",
        ],
        &input,
    );
    let kept = read_spans(&keep_all.0);
    assert!(
        kept.iter().any(|r| r.name == "llm.call"),
        "tail:0ms must keep fine spans (every job clears the threshold)"
    );
}
