//! SLO gate end-to-end: start a real `ioagentd --listen 127.0.0.1:0
//! --slo ioagentd.slo`, push a batch over TCP, then
//!
//! - probe `{"slo": true}` in-band and expect a passing report,
//! - run `ioagentd slo-check <addr>` (daemon-side declarations) and
//!   expect exit 0,
//! - run `ioagentd slo-check <addr> --slo <impossible>` and expect
//!   exit 1 — the CI gate must actually be able to fail,
//! - run `ioagentd top <addr> --once` and keep the frame as a CI
//!   artifact in `target/obs-smoke/`.
//!
//! This is the test CI runs as its SLO gate; the committed declarations
//! live in `ioagentd.slo` at the repository root.

use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawn the daemon on an OS-assigned port and scrape the bound
    /// address from its `[ioagentd] listening on …` stderr line.
    fn spawn(extra: &[&str]) -> Daemon {
        let mut args = vec!["--workers", "2", "--listen", "127.0.0.1:0"];
        args.extend_from_slice(extra);
        let mut child = Command::new(env!("CARGO_BIN_EXE_ioagentd"))
            .args(&args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ioagentd");
        let stderr = child.stderr.take().expect("stderr");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before listening")
                .expect("stderr line");
            if let Some(rest) = line.strip_prefix("[ioagentd] listening on ") {
                break rest.trim().to_string();
            }
        };
        // Keep draining stderr so the daemon never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Push `n` distinct jobs through one TCP connection and return the
/// reply to a trailing `{"slo": true}` probe.
fn drive_jobs_and_probe_slo(addr: &str, n: usize) -> Value {
    let suite = tracebench::TraceBench::generate();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    for (i, entry) in suite.entries.iter().cycle().take(n).enumerate() {
        let line = json!({
            "id": format!("slo-job-{i}"),
            "trace": darshan::write::write_text(&entry.trace),
            "model": "gpt-4o-mini",
        });
        writeln!(writer, "{}", serde_json::to_string(&line).unwrap()).expect("send job");
    }
    writer
        .write_all(b"{\"id\": \"slo-probe\", \"slo\": true}\n")
        .expect("send probe");
    writer.flush().expect("flush");
    let mut replies = Vec::new();
    for _ in 0..=n {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        replies.push(serde_json::from_str::<Value>(line.trim()).expect("reply is JSON"));
    }
    for r in &replies[..n] {
        assert!(r.get("error").is_none(), "job failed: {r:?}");
    }
    replies.pop().expect("slo probe reply")
}

fn run_subcommand(args: &[&str]) -> (std::process::ExitStatus, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ioagentd"))
        .args(args)
        .output()
        .expect("run subcommand");
    (out.status, String::from_utf8(out.stdout).expect("utf-8"))
}

#[test]
fn slo_check_gates_a_live_daemon() {
    let slo_file = repo_root().join("ioagentd.slo");
    let slo_arg = slo_file.to_str().unwrap();
    let daemon = Daemon::spawn(&["--slo", slo_arg]);

    // Warm the windows with a batch, probing SLOs in-band on the same
    // connection: the reply must carry a passing report for the three
    // committed declarations (exec p99/p999 and queue-wait p99).
    let probe = drive_jobs_and_probe_slo(&daemon.addr, 8);
    let slo = probe.get("slo").expect("slo section");
    assert_eq!(
        slo.get("pass").and_then(Value::as_bool),
        Some(true),
        "{probe:?}"
    );
    let checks = slo.get("checks").and_then(Value::as_array).expect("checks");
    assert_eq!(checks.len(), 3, "all committed declarations evaluated");
    for c in checks {
        assert_eq!(c.get("pass").and_then(Value::as_bool), Some(true), "{c:?}");
        assert!(
            c.get("observed_ns").and_then(Value::as_i64).unwrap() > 0,
            "windowed quantile must be a real observation: {c:?}"
        );
    }

    // The CI gate: daemon-side declarations, exit 0 on pass.
    let (status, stdout) = run_subcommand(&["slo-check", &daemon.addr]);
    assert!(status.success(), "slo-check failed:\n{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
    assert!(!stdout.contains("FAIL"), "{stdout}");

    // …and it can actually fail: client-side declarations nothing meets.
    let impossible = std::env::temp_dir().join(format!("impossible-{}.slo", std::process::id()));
    std::fs::write(&impossible, "exec_p99 < 1ns over 60s\n").expect("write slo");
    let (status, stdout) = run_subcommand(&[
        "slo-check",
        &daemon.addr,
        "--slo",
        impossible.to_str().unwrap(),
    ]);
    let _ = std::fs::remove_file(&impossible);
    assert_eq!(status.code(), Some(1), "violation must exit 1:\n{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");

    // A single `top` frame renders occupancy, rates, and stage bars.
    let (status, frame) = run_subcommand(&["top", &daemon.addr, "--once"]);
    assert!(status.success(), "top --once failed:\n{frame}");
    assert!(frame.contains("ioagentd top"), "{frame}");
    assert!(frame.contains("last 60s"), "{frame}");
    assert!(frame.contains("exec_ns"), "{frame}");
    assert!(frame.contains('#'), "stage bars missing:\n{frame}");

    // Leave the frame where CI uploads artifacts from.
    let artifacts = repo_root().join("target/obs-smoke");
    std::fs::create_dir_all(&artifacts).expect("create artifact dir");
    std::fs::write(artifacts.join("top.txt"), &frame).expect("write top frame");
}
