//! End-to-end persistence smoke: drive the real `ioagentd` binary over
//! stdio, restart it against the same `--state-dir`, and assert the repeat
//! batch is served with zero LLM calls and byte-identical reports. Also
//! exercises the hardened input path (oversized and malformed lines) and
//! the in-band `{"stats": true}` probe. This is the test CI runs as its
//! persistence smoke job.

use serde_json::{json, Value};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ioagentd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Run the daemon with the given args, feed it `input`, return stdout
/// lines parsed as JSON.
fn run_daemon(args: &[&str], input: &str) -> Vec<Value> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ioagentd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ioagentd");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("daemon exit");
    assert!(
        output.status.success(),
        "daemon exited with {:?}",
        output.status
    );
    String::from_utf8(output.stdout)
        .expect("utf-8 stdout")
        .lines()
        .map(|l| serde_json::from_str(l).expect("response line is JSON"))
        .collect()
}

fn request_lines(n: usize) -> String {
    let suite = tracebench::TraceBench::generate();
    let mut out = String::new();
    for entry in suite.entries.iter().take(n) {
        let text = darshan::write::write_text(&entry.trace);
        let line = json!({
            "id": entry.spec.id,
            "trace": text,
            "model": "gpt-4o-mini",
        });
        out.push_str(&serde_json::to_string(&line).unwrap());
        out.push('\n');
    }
    out
}

fn llm_calls(response: &Value) -> i64 {
    response
        .get("llm_calls")
        .and_then(Value::as_i64)
        .unwrap_or_else(|| panic!("response without llm_calls: {response:?}"))
}

#[test]
fn daemon_restart_serves_previous_batch_for_free() {
    let state = TempDir::new("smoke-state");
    let state_arg = state.0.to_str().unwrap();
    let requests = request_lines(3);

    // Generation 1: cold state dir — real diagnoses, journalled to disk.
    let first = run_daemon(&["--workers", "2", "--state-dir", state_arg], &requests);
    assert_eq!(first.len(), 3);
    for r in &first {
        assert!(llm_calls(r) > 0, "cold run must hit the LLM: {r:?}");
        assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
    }
    assert!(state.0.join(iostore::RESULTS_FILE).is_file());
    assert!(state.0.join(iostore::INDEX_FILE).is_file());

    // Generation 2: a fresh daemon process over the same state dir. The
    // index comes from the snapshot, the batch from the journal: zero LLM
    // calls, byte-identical reports.
    let second = run_daemon(&["--workers", "2", "--state-dir", state_arg], &requests);
    assert_eq!(second.len(), 3);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            llm_calls(b),
            0,
            "restart must serve from the journal: {b:?}"
        );
        assert_eq!(b.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(a.get("id"), b.get("id"));
        assert_eq!(
            a.get("text"),
            b.get("text"),
            "reports must be byte-identical"
        );
        assert_eq!(a.get("issues"), b.get("issues"));
        assert_eq!(a.get("references"), b.get("references"));
    }
}

#[test]
fn daemon_stats_probe_reports_cache_and_journal_counters() {
    let state = TempDir::new("stats-state");
    let state_arg = state.0.to_str().unwrap();
    let mut input = request_lines(2);
    // Same two traces again (served from cache), then a stats probe.
    input.push_str(&request_lines(2));
    input.push_str("{\"id\": \"probe\", \"stats\": true}\n");

    let responses = run_daemon(&["--workers", "1", "--state-dir", state_arg], &input);
    assert_eq!(responses.len(), 5);
    let stats = responses[4].get("stats").expect("stats response");
    assert_eq!(
        responses[4].get("id").and_then(Value::as_str),
        Some("probe")
    );
    assert_eq!(stats.get("jobs_completed").and_then(Value::as_i64), Some(4));
    assert_eq!(stats.get("cache_hits").and_then(Value::as_i64), Some(2));
    assert_eq!(stats.get("cache_misses").and_then(Value::as_i64), Some(2));
    assert_eq!(
        stats.get("persistence").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        stats.get("persisted_entries").and_then(Value::as_i64),
        Some(2)
    );
    assert!(stats.get("journal_bytes").and_then(Value::as_i64).unwrap() > 0);
}

#[test]
fn daemon_survives_malformed_and_oversized_lines() {
    let mut input = String::new();
    input.push_str("{\"id\": \"bad\", \"nonsense\": true}\n"); // missing trace
    input.push_str("this is not json at all\n");
    // An oversized line (> 4 MiB) of garbage.
    input.push_str(&"x".repeat(ioagentd::protocol::MAX_REQUEST_LINE_BYTES + 16));
    input.push('\n');
    input.push_str(&request_lines(1)); // a valid job after all that

    let responses = run_daemon(&["--workers", "1"], &input);
    assert_eq!(responses.len(), 4, "every line gets exactly one response");
    assert_eq!(
        responses[0].get("id").and_then(Value::as_str),
        Some("bad"),
        "parseable id must be echoed in the error"
    );
    assert!(responses[0].get("error").is_some());
    assert!(responses[1].get("error").is_some());
    let oversized = responses[2].get("error").and_then(Value::as_str).unwrap();
    assert!(oversized.contains("exceeds"), "{oversized}");
    // The stream survived: the valid job ran normally.
    assert!(llm_calls(&responses[3]) > 0);
    assert!(responses[3].get("error").is_none());
}
