//! Newline-delimited JSON protocol for the `ioagentd` front end.
//!
//! One request per line:
//!
//! ```json
//! {"id": "job-1", "trace": "<darshan-parser text>", "model": "gpt-4o",
//!  "top_k": 15, "use_rag": true, "nl_transform": true, "merge": "tree",
//!  "reflection_model": "gpt-4o-mini"}
//! ```
//!
//! Only `trace` is required; `id` defaults to the line number, `model` to
//! `gpt-4o`, and the remaining fields to the paper configuration. One
//! response (or error) per line, in request order:
//!
//! ```json
//! {"id": "job-1", "tool": "ioagent-gpt-4o", "issues": ["small_write"],
//!  "references": ["..."], "text": "...", "cached": false, "llm_calls": 93,
//!  "input_tokens": 31200, "output_tokens": 4800, "cost_usd": 0.21,
//!  "queue_wait_ms": 0.1, "exec_ms": 42.0, "worker": 3}
//! ```

use crate::service::{JobRequest, JobResult};
use ioagent_core::{AgentConfig, MergeStrategy};
use serde_json::{json, Value};

/// A rejected request line: the id to answer under (the request's own
/// `id` whenever the JSON parsed far enough to reveal one) plus the
/// reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Identifier to echo in the error response.
    pub id: String,
    /// Human-readable rejection reason.
    pub message: String,
}

/// Parse one NDJSON request line into a [`JobRequest`].
pub fn parse_request(line: &str, default_id: &str) -> Result<JobRequest, RequestError> {
    let fail = |id: &str, message: String| RequestError {
        id: id.to_string(),
        message,
    };
    let value: Value = serde_json::from_str(line).map_err(|e| fail(default_id, e.to_string()))?;
    // Resolve the id first so later rejections are attributable.
    let id = value
        .get("id")
        .and_then(Value::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| default_id.to_string());
    let trace_text = value
        .get("trace")
        .and_then(Value::as_str)
        .ok_or_else(|| fail(&id, "missing required string field \"trace\"".to_string()))?;
    let model = value
        .get("model")
        .and_then(Value::as_str)
        .unwrap_or("gpt-4o")
        .to_string();

    let mut config = AgentConfig::default();
    if let Some(k) = value.get("top_k").and_then(Value::as_i64) {
        if k < 1 {
            return Err(fail(&id, format!("top_k must be >= 1, got {k}")));
        }
        config.top_k = k as usize;
    }
    if let Some(b) = value.get("use_rag").and_then(Value::as_bool) {
        config.use_rag = b;
    }
    if let Some(b) = value.get("nl_transform").and_then(Value::as_bool) {
        config.nl_transform = b;
    }
    if let Some(m) = value.get("merge").and_then(Value::as_str) {
        config.merge = match m {
            "tree" => MergeStrategy::Tree,
            "flat" => MergeStrategy::Flat,
            other => {
                return Err(fail(
                    &id,
                    format!("unknown merge strategy {other:?} (tree|flat)"),
                ))
            }
        };
    }
    if let Some(m) = value.get("reflection_model").and_then(Value::as_str) {
        config.reflection_model = m.to_string();
    }

    let mut request =
        JobRequest::from_trace_text(id.clone(), trace_text, model).map_err(|e| fail(&id, e))?;
    request.config = config;
    Ok(request)
}

/// Render a completed job as one compact JSON line.
pub fn render_result(result: &JobResult) -> String {
    let issues: Vec<Value> = result
        .diagnosis
        .issues
        .iter()
        .map(|i| json!(i.key()))
        .collect();
    let response = json!({
        "id": result.id,
        "tool": result.diagnosis.tool,
        "issues": issues,
        "references": result.diagnosis.references,
        "text": result.diagnosis.text,
        "cached": result.cached,
        "llm_calls": result.metrics.llm_calls,
        "input_tokens": result.metrics.input_tokens,
        "output_tokens": result.metrics.output_tokens,
        "cost_usd": result.metrics.cost_usd,
        "queue_wait_ms": result.metrics.queue_wait.as_secs_f64() * 1e3,
        "exec_ms": result.metrics.exec.as_secs_f64() * 1e3,
        "worker": if result.worker == usize::MAX { -1 } else { result.worker as i64 },
    });
    serde_json::to_string(&response).expect("serialize response")
}

/// Render a per-line failure as one compact JSON line.
pub fn render_error(id: &str, message: &str) -> String {
    serde_json::to_string(&json!({ "id": id, "error": message })).expect("serialize error")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::Diagnosis;
    use std::time::Duration;

    fn trace_json_line() -> String {
        let suite = tracebench::TraceBench::generate();
        let text = darshan::write::write_text(&suite.entries[0].trace);
        serde_json::to_string(&json!({
            "id": "t1",
            "trace": text,
            "model": "gpt-4o-mini",
            "top_k": 5,
            "merge": "flat",
            "use_rag": false,
        }))
        .unwrap()
    }

    #[test]
    fn request_round_trip() {
        let line = trace_json_line();
        let req = parse_request(&line, "fallback").unwrap();
        assert_eq!(req.id, "t1");
        assert_eq!(req.model, "gpt-4o-mini");
        assert_eq!(req.config.top_k, 5);
        assert_eq!(req.config.merge, MergeStrategy::Flat);
        assert!(!req.config.use_rag);
        assert!(!req.trace.records.is_empty());
    }

    #[test]
    fn missing_trace_is_an_error() {
        let err = parse_request(r#"{"id": "x"}"#, "d").unwrap_err();
        assert_eq!(err.id, "x", "error must carry the request's own id");
        assert!(err.message.contains("trace"), "{}", err.message);
    }

    #[test]
    fn bad_merge_is_an_error() {
        let line = r#"{"trace": "", "merge": "diagonal"}"#;
        let err = parse_request(line, "d").unwrap_err();
        assert_eq!(err.id, "d", "no id in the request, so the fallback applies");
        assert!(err.message.contains("diagonal"), "{}", err.message);
    }

    #[test]
    fn defaults_apply() {
        let suite = tracebench::TraceBench::generate();
        let text = darshan::write::write_text(&suite.entries[0].trace);
        let line = serde_json::to_string(&json!({ "trace": text })).unwrap();
        let req = parse_request(&line, "line-7").unwrap();
        assert_eq!(req.id, "line-7");
        assert_eq!(req.model, "gpt-4o");
        assert_eq!(req.config.top_k, AgentConfig::default().top_k);
    }

    #[test]
    fn result_renders_parseable_json() {
        let result = JobResult {
            id: "j".into(),
            diagnosis: Diagnosis {
                tool: "ioagent-gpt-4o".into(),
                text: "line one\nline \"two\"".into(),
                issues: vec![tracebench::IssueLabel::SmallWrite],
                references: vec!["[A, B 2020]".into()],
            },
            cached: false,
            worker: 2,
            metrics: crate::service::JobMetrics {
                llm_calls: 3,
                exec: Duration::from_millis(5),
                ..Default::default()
            },
        };
        let line = render_result(&result);
        let back: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(back.get("id").and_then(Value::as_str), Some("j"));
        assert_eq!(back.get("llm_calls").and_then(Value::as_i64), Some(3));
        assert_eq!(back.get("worker").and_then(Value::as_i64), Some(2));
        // Issue labels use the documented stable snake_case keys.
        assert_eq!(
            back.get("issues"),
            Some(&Value::Array(vec![Value::String("small_write".into())]))
        );
        assert_eq!(
            back.get("text").and_then(Value::as_str),
            Some("line one\nline \"two\"")
        );
    }
}
