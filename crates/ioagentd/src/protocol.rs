//! Newline-delimited JSON protocol for the `ioagentd` front end.
//!
//! One request per line:
//!
//! ```json
//! {"id": "job-1", "trace": "<darshan-parser text>", "model": "gpt-4o",
//!  "top_k": 15, "use_rag": true, "nl_transform": true, "merge": "tree",
//!  "reflection_model": "gpt-4o-mini"}
//! ```
//!
//! Only `trace` is required; `id` defaults to the line number, `model` to
//! `gpt-4o`, and the remaining fields to the paper configuration. One
//! response (or error) per line, in request order:
//!
//! ```json
//! {"id": "job-1", "tool": "ioagent-gpt-4o", "issues": ["small_write"],
//!  "references": ["..."], "text": "...", "cached": false, "llm_calls": 93,
//!  "input_tokens": 31200, "output_tokens": 4800, "cost_usd": 0.21,
//!  "queue_wait_ms": 0.1, "exec_ms": 42.0, "worker": 3}
//! ```

use crate::resilience::JobFailure;
use crate::service::{JobRequest, JobResult, ServiceStats, SubmitError};
use ioagent_core::{AgentConfig, MergeStrategy};
use ioobserve::{HistogramSnapshot, RegistrySnapshot, SloReport};
use serde_json::{json, Map, Value};
use std::io::{self, BufRead};

/// Hard cap on a caller-supplied `trace_id`. Generous for any sane
/// correlation id while keeping span-file attrs bounded.
pub const MAX_TRACE_ID_BYTES: usize = 128;

/// Hard cap on one request line. A single darshan-parser text trace is
/// typically tens of kilobytes; 4 MiB leaves two orders of magnitude of
/// headroom while bounding per-connection memory, so one hostile or
/// corrupted line cannot balloon the daemon. Oversized lines are consumed
/// (to resynchronise on the next newline) and answered with a structured
/// per-line error instead of poisoning the stream.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Stable machine-readable classification of error replies, sent on the
/// wire as the `error_kind` field. The snake_case names are part of the
/// protocol (pinned by `error_replies_pin_exact_strings`); clients may
/// dispatch on them without parsing the human-readable `error` text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line exceeded [`MAX_REQUEST_LINE_BYTES`].
    OversizedLine,
    /// The line was not valid JSON.
    MalformedJson,
    /// Valid JSON, but the request fields were missing or out of range.
    InvalidRequest,
    /// The backbone or reflection model matches no known profile.
    UnknownModel,
    /// The bounded job queue was full (non-blocking submission only).
    QueueFull,
    /// The service is shutting down and accepts no new jobs.
    Shutdown,
    /// An injected LLM timeout ended the job (retries disabled).
    LlmTimeout,
    /// An injected LLM rate-limit error ended the job (retries disabled).
    LlmRateLimited,
    /// An injected truncated LLM response ended the job (retries
    /// disabled).
    LlmTruncated,
    /// The job's deadline expired (in the queue or mid-execution).
    DeadlineExceeded,
    /// Every allowed LLM delivery attempt faulted.
    RetriesExhausted,
}

impl ErrorKind {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::OversizedLine => "oversized_line",
            ErrorKind::MalformedJson => "malformed_json",
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::LlmTimeout => "llm_timeout",
            ErrorKind::LlmRateLimited => "llm_rate_limited",
            ErrorKind::LlmTruncated => "llm_truncated",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::RetriesExhausted => "retries_exhausted",
        }
    }
}

impl From<&JobFailure> for ErrorKind {
    fn from(f: &JobFailure) -> ErrorKind {
        match f {
            JobFailure::DeadlineExceededQueued | JobFailure::DeadlineExceeded => {
                ErrorKind::DeadlineExceeded
            }
            JobFailure::RetriesExhausted { .. } => ErrorKind::RetriesExhausted,
            JobFailure::Fault(kind) => match kind {
                simllm::FaultKind::Timeout => ErrorKind::LlmTimeout,
                simllm::FaultKind::RateLimited => ErrorKind::LlmRateLimited,
                simllm::FaultKind::Truncated => ErrorKind::LlmTruncated,
            },
        }
    }
}

impl From<&SubmitError> for ErrorKind {
    fn from(e: &SubmitError) -> ErrorKind {
        match e {
            SubmitError::UnknownModel(_) => ErrorKind::UnknownModel,
            SubmitError::QueueFull => ErrorKind::QueueFull,
            SubmitError::ShuttingDown => ErrorKind::Shutdown,
        }
    }
}

/// A rejected request line: the id to answer under (the request's own
/// `id` whenever the JSON parsed far enough to reveal one) plus the
/// kind and reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Identifier to echo in the error response.
    pub id: String,
    /// Machine-readable classification (`error_kind` on the wire).
    pub kind: ErrorKind,
    /// Human-readable rejection reason.
    pub message: String,
}

/// One parsed protocol line.
#[derive(Debug)]
pub enum Request {
    /// A diagnosis job (boxed: a parsed trace is large).
    Job(Box<JobRequest>),
    /// A stats probe: `{"stats": true}` — answered inline with the
    /// service's aggregate counters, never enqueued.
    Stats {
        /// Identifier to echo in the stats response.
        id: String,
    },
    /// A metrics probe: `{"metrics": true}` — answered inline with the
    /// full observability registries (counters, gauges, and histogram
    /// quantiles per pipeline stage, lifetime and windowed), never
    /// enqueued.
    Metrics {
        /// Identifier to echo in the metrics response.
        id: String,
    },
    /// An SLO probe: `{"slo": true}` — answered inline with the daemon's
    /// configured SLO declarations evaluated against the current windowed
    /// quantiles, never enqueued.
    Slo {
        /// Identifier to echo in the SLO response.
        id: String,
    },
}

/// Parse one NDJSON line into a [`Request`] (job, stats, or metrics
/// probe).
pub fn parse_line(line: &str, default_id: &str) -> Result<Request, RequestError> {
    let value: Value = serde_json::from_str(line).map_err(|e| RequestError {
        id: default_id.to_string(),
        kind: ErrorKind::MalformedJson,
        message: e.to_string(),
    })?;
    let id = resolve_id(&value, default_id);
    if value.get("stats").and_then(Value::as_bool) == Some(true) {
        return Ok(Request::Stats { id });
    }
    if value.get("metrics").and_then(Value::as_bool) == Some(true) {
        return Ok(Request::Metrics { id });
    }
    if value.get("slo").and_then(Value::as_bool) == Some(true) {
        return Ok(Request::Slo { id });
    }
    parse_request_value(value, id).map(|job| Request::Job(Box::new(job)))
}

// Resolved before field validation so later rejections are attributable
// to the request's own id.
fn resolve_id(value: &Value, default_id: &str) -> String {
    value
        .get("id")
        .and_then(Value::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| default_id.to_string())
}

fn parse_request_value(value: Value, id: String) -> Result<JobRequest, RequestError> {
    let fail = |id: &str, message: String| RequestError {
        id: id.to_string(),
        kind: ErrorKind::InvalidRequest,
        message,
    };
    let trace_text = value
        .get("trace")
        .and_then(Value::as_str)
        .ok_or_else(|| fail(&id, "missing required string field \"trace\"".to_string()))?;
    let model = value
        .get("model")
        .and_then(Value::as_str)
        .unwrap_or("gpt-4o")
        .to_string();

    let mut config = AgentConfig::default();
    if let Some(k) = value.get("top_k").and_then(Value::as_i64) {
        if k < 1 {
            return Err(fail(&id, format!("top_k must be >= 1, got {k}")));
        }
        config.top_k = k as usize;
    }
    if let Some(b) = value.get("use_rag").and_then(Value::as_bool) {
        config.use_rag = b;
    }
    if let Some(b) = value.get("nl_transform").and_then(Value::as_bool) {
        config.nl_transform = b;
    }
    if let Some(m) = value.get("merge").and_then(Value::as_str) {
        config.merge = match m {
            "tree" => MergeStrategy::Tree,
            "flat" => MergeStrategy::Flat,
            other => {
                return Err(fail(
                    &id,
                    format!("unknown merge strategy {other:?} (tree|flat)"),
                ))
            }
        };
    }
    if let Some(m) = value.get("reflection_model").and_then(Value::as_str) {
        config.reflection_model = m.to_string();
    }
    let trace_id = match value.get("trace_id") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let t = v
                .as_str()
                .ok_or_else(|| fail(&id, "trace_id must be a string when present".to_string()))?;
            validate_trace_id(t).map_err(|e| fail(&id, e))?;
            Some(t.to_string())
        }
    };
    let deadline = match value.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let ms = v
                .as_f64()
                .filter(|ms| ms.is_finite() && *ms > 0.0)
                .ok_or_else(|| {
                    fail(
                        &id,
                        format!("deadline_ms must be a positive number, got {v:?}"),
                    )
                })?;
            Some(std::time::Duration::from_secs_f64(ms / 1e3))
        }
    };

    let mut request =
        JobRequest::from_trace_text(id.clone(), trace_text, model).map_err(|e| fail(&id, e))?;
    request.config = config;
    request.trace_id = trace_id;
    request.deadline = deadline;
    Ok(request)
}

/// A caller-supplied trace id must be non-empty, bounded, and span-attr
/// safe (alphanumeric plus `-_.:`), so it can be embedded in NDJSON span
/// files and grouped on without any escaping concerns.
fn validate_trace_id(t: &str) -> Result<(), String> {
    if t.is_empty() {
        return Err("trace_id must not be empty".to_string());
    }
    if t.len() > MAX_TRACE_ID_BYTES {
        return Err(format!(
            "trace_id of {} bytes exceeds the {MAX_TRACE_ID_BYTES} byte limit",
            t.len()
        ));
    }
    if let Some(bad) = t
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':')))
    {
        return Err(format!(
            "trace_id contains {bad:?}; allowed: ASCII alphanumerics and -_.:"
        ));
    }
    Ok(())
}

/// Render a completed job as one compact JSON line. Failed jobs render
/// as error replies: the same `{"error", "error_kind", "id"}` shape as
/// request-level rejections, with the failure's kind
/// (`deadline_exceeded`, `retries_exhausted`, `llm_*`).
pub fn render_result(result: &JobResult) -> String {
    if let Some(failure) = &result.failure {
        return render_error(&result.id, failure.into(), &failure.message());
    }
    let issues: Vec<Value> = result
        .diagnosis
        .issues
        .iter()
        .map(|i| json!(i.key()))
        .collect();
    let response = json!({
        "id": result.id,
        "tool": result.diagnosis.tool,
        "issues": issues,
        "references": result.diagnosis.references,
        "text": result.diagnosis.text,
        "cached": result.cached,
        "llm_calls": result.metrics.llm_calls,
        "input_tokens": result.metrics.input_tokens,
        "output_tokens": result.metrics.output_tokens,
        "cost_usd": result.metrics.cost_usd,
        "queue_wait_ms": result.metrics.queue_wait.as_secs_f64() * 1e3,
        "exec_ms": result.metrics.exec.as_secs_f64() * 1e3,
        "worker": if result.worker == usize::MAX { -1 } else { result.worker as i64 },
        "trace_id": result.trace_id,
    });
    serde_json::to_string(&response).expect("serialize response")
}

/// Render a per-line failure as one compact JSON line carrying both the
/// human-readable `error` and the stable machine-readable `error_kind`.
pub fn render_error(id: &str, kind: ErrorKind, message: &str) -> String {
    serde_json::to_string(&json!({ "id": id, "error": message, "error_kind": kind.as_str() }))
        .expect("serialize error")
}

/// Render the service's aggregate counters as one compact JSON line
/// (the response to a `{"stats": true}` request). `queue_depth` is the
/// probe-time queue occupancy — the one instantaneous gauge the
/// otherwise-monotonic stats reply carries.
pub fn render_stats(
    id: &str,
    stats: &ServiceStats,
    persistence: bool,
    queue_depth: usize,
) -> String {
    let response = json!({
        "id": id,
        "stats": json!({
            "jobs_completed": stats.jobs_completed,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "llm_calls": stats.llm_calls,
            "input_tokens": stats.input_tokens,
            "output_tokens": stats.output_tokens,
            "cost_usd": stats.cost_usd,
            "persistence": persistence,
            "persisted_entries": stats.persisted_entries,
            "journal_bytes": stats.journal_bytes,
            "queue_depth": queue_depth,
            "jobs_failed": stats.jobs_failed,
            "shed_total": stats.shed_total,
            "deadline_exceeded": stats.deadline_exceeded,
            "retries": stats.retries,
            "hedges": stats.hedges,
            "hedge_wins": stats.hedge_wins,
            "faults_timeout": stats.faults_timeout,
            "faults_rate_limited": stats.faults_rate_limited,
            "faults_truncated": stats.faults_truncated,
        }),
    });
    serde_json::to_string(&response).expect("serialize stats")
}

fn histogram_json(h: &HistogramSnapshot) -> Value {
    json!({
        "count": h.count,
        "sum_ns": h.sum,
        "mean_ns": h.mean(),
        "min_ns": h.min,
        "max_ns": h.max,
        "p50_ns": h.p50,
        "p90_ns": h.p90,
        "p99_ns": h.p99,
        "p999_ns": h.p999,
    })
}

/// One windowed histogram summary. An empty window reports `null`
/// statistics (not 0) — a dashboard renders `-`, and nothing downstream
/// can mistake "no samples in the last 10 s" for "p99 of zero".
fn histogram_window_json(h: &HistogramSnapshot, window_ns: u64) -> Value {
    let mut out = Map::new();
    out.insert("window_s".to_string(), json!(window_ns as f64 / 1e9));
    out.insert("count".to_string(), json!(h.count));
    let stat = |v: u64| if h.count == 0 { Value::Null } else { json!(v) };
    out.insert("sum_ns".to_string(), stat(h.sum));
    out.insert("mean_ns".to_string(), stat(h.mean()));
    out.insert("min_ns".to_string(), stat(h.min));
    out.insert("max_ns".to_string(), stat(h.max));
    out.insert("p50_ns".to_string(), stat(h.p50));
    out.insert("p90_ns".to_string(), stat(h.p90));
    out.insert("p99_ns".to_string(), stat(h.p99));
    out.insert("p999_ns".to_string(), stat(h.p999));
    Value::Object(out)
}

fn registry_json(snap: &RegistrySnapshot) -> Value {
    let mut counters = Map::new();
    for (name, v) in &snap.counters {
        counters.insert(name.clone(), json!(v));
    }
    for (name, v) in &snap.floats {
        counters.insert(name.clone(), json!(v));
    }
    let mut gauges = Map::new();
    for (name, v) in &snap.gauges {
        gauges.insert(name.clone(), json!(v));
    }
    let mut histograms = Map::new();
    for (name, h) in &snap.histograms {
        let mut entry = histogram_json(h);
        if let Some((_, wins)) = snap.histogram_windows.iter().find(|(n, _)| n == name) {
            let windows: Vec<Value> = wins
                .iter()
                .zip(&snap.window_ns)
                .map(|(w, &ns)| histogram_window_json(w, ns))
                .collect();
            entry
                .as_object_mut()
                .expect("histogram_json is an object")
                .insert("windows".to_string(), Value::Array(windows));
        }
        histograms.insert(name.clone(), entry);
    }
    let mut out = Map::new();
    out.insert("counters".to_string(), Value::Object(counters));
    out.insert("gauges".to_string(), Value::Object(gauges));
    out.insert("histograms".to_string(), Value::Object(histograms));
    if !snap.window_ns.is_empty() {
        let window_s: Vec<f64> = snap.window_ns.iter().map(|&ns| ns as f64 / 1e9).collect();
        out.insert("window_s".to_string(), json!(window_s));
        let mut counter_windows = Map::new();
        for (name, totals) in &snap.counter_windows {
            counter_windows.insert(name.clone(), json!(totals));
        }
        out.insert(
            "counter_windows".to_string(),
            Value::Object(counter_windows),
        );
        if let Some(rates) = rates_json(snap) {
            out.insert("rates".to_string(), rates);
        }
    }
    Value::Object(out)
}

/// Per-window throughput rates, derived from the windowed service
/// counters: jobs/s, errors/s, and the cache-hit ratio among jobs that
/// completed in the window (`null` when no jobs did). Only emitted for
/// registries that carry the `service.*` counters.
fn rates_json(snap: &RegistrySnapshot) -> Option<Value> {
    let windows = |name: &str| -> Option<&Vec<u64>> {
        snap.counter_windows
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    };
    let jobs = windows("service.jobs_completed")?;
    let hits = windows("service.cache_hits");
    let errors = windows("service.errors");
    let rows: Vec<Value> = snap
        .window_ns
        .iter()
        .enumerate()
        .map(|(i, &ns)| {
            let secs = ns as f64 / 1e9;
            let jobs_n = jobs.get(i).copied().unwrap_or(0);
            let hit_ratio = match (hits.and_then(|h| h.get(i)), jobs_n) {
                (_, 0) => Value::Null,
                (Some(&h), n) => json!(h as f64 / n as f64),
                (None, _) => Value::Null,
            };
            json!({
                "window_s": secs,
                "jobs_per_s": jobs_n as f64 / secs,
                "errors_per_s": errors.and_then(|e| e.get(i)).copied().unwrap_or(0) as f64 / secs,
                "cache_hit_ratio": hit_ratio,
            })
        })
        .collect();
    Some(Value::Array(rows))
}

/// Render the full observability registries as one compact JSON line
/// (the response to a `{"metrics": true}` request): the service's own
/// counters and latency histograms under `"service"`, and the
/// process-global stage/library metrics (pipeline stages, vecindex,
/// simllm, iostore) under `"process"`, each histogram summarized as
/// count/mean/min/max and p50/p90/p99/p999 in nanoseconds.
pub fn render_metrics(id: &str, service: &RegistrySnapshot, process: &RegistrySnapshot) -> String {
    let response = json!({
        "id": id,
        "metrics": json!({
            "service": registry_json(service),
            "process": registry_json(process),
        }),
    });
    serde_json::to_string(&response).expect("serialize metrics")
}

/// Render an evaluated SLO report as one compact JSON line (the response
/// to an `{"slo": true}` request). `checks` is empty when the daemon was
/// started without `--slo`.
pub fn render_slo(id: &str, report: &SloReport) -> String {
    let checks: Vec<Value> = report
        .checks
        .iter()
        .map(|c| {
            json!({
                "decl": c.decl.text,
                "metric": c.decl.metric,
                "quantile": c.decl.quantile.label(),
                "bound_ns": c.decl.bound_ns,
                "window_s": c.decl.window_ns as f64 / 1e9,
                "observed_ns": c.observed_ns,
                "samples": c.samples,
                "pass": c.pass,
                "note": c.note,
            })
        })
        .collect();
    let response = json!({
        "id": id,
        "slo": json!({ "pass": report.pass(), "checks": checks }),
    });
    serde_json::to_string(&response).expect("serialize slo")
}

fn snapshot_histogram(v: &Value) -> HistogramSnapshot {
    let field = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    HistogramSnapshot {
        count: field("count"),
        sum: field("sum_ns"),
        min: field("min_ns"),
        max: field("max_ns"),
        p50: field("p50_ns"),
        p90: field("p90_ns"),
        p99: field("p99_ns"),
        p999: field("p999_ns"),
    }
}

/// Reconstruct a [`RegistrySnapshot`] from one registry section of a
/// `{"metrics": true}` reply (the inverse of `registry_json`, up to the
/// empty-window `null`s, which map back to zeros under `count == 0`).
/// This is how `ioagentd top` and a remote `ioagentd slo-check` turn the
/// wire format back into the structures the renderer and the SLO engine
/// evaluate locally.
pub fn snapshot_from_metrics_json(section: &Value) -> RegistrySnapshot {
    let mut snap = RegistrySnapshot::default();
    if let Some(counters) = section.get("counters").and_then(Value::as_object) {
        for (name, v) in counters {
            // Integral values are counters; anything else came from a
            // FloatCounter.
            match v.as_u64() {
                Some(n) => snap.counters.push((name.clone(), n)),
                None => snap.floats.push((name.clone(), v.as_f64().unwrap_or(0.0))),
            }
        }
    }
    if let Some(gauges) = section.get("gauges").and_then(Value::as_object) {
        for (name, v) in gauges {
            snap.gauges.push((name.clone(), v.as_u64().unwrap_or(0)));
        }
    }
    snap.window_ns = section
        .get("window_s")
        .and_then(Value::as_array)
        .map(|ws| {
            ws.iter()
                .filter_map(Value::as_f64)
                .map(|s| (s * 1e9).round() as u64)
                .collect()
        })
        .unwrap_or_default();
    if let Some(hists) = section.get("histograms").and_then(Value::as_object) {
        for (name, h) in hists {
            snap.histograms.push((name.clone(), snapshot_histogram(h)));
            if let Some(wins) = h.get("windows").and_then(Value::as_array) {
                snap.histogram_windows
                    .push((name.clone(), wins.iter().map(snapshot_histogram).collect()));
            }
        }
    }
    if let Some(cw) = section.get("counter_windows").and_then(Value::as_object) {
        for (name, totals) in cw {
            let totals = totals
                .as_array()
                .map(|t| t.iter().filter_map(Value::as_u64).collect())
                .unwrap_or_default();
            snap.counter_windows.push((name.clone(), totals));
        }
    }
    snap
}

/// One read from a bounded request stream.
#[derive(Debug, PartialEq, Eq)]
pub enum InputLine {
    /// A complete line within the size limit (newline stripped).
    Line(String),
    /// A line longer than the limit. The excess has been consumed up to
    /// (and including) the next newline, so the stream is resynchronised;
    /// `bytes` is the total length of the discarded line.
    Oversized {
        /// Length of the oversized line in bytes.
        bytes: usize,
    },
    /// End of stream.
    Eof,
}

/// Read one `\n`-terminated line, holding at most `max` bytes in memory.
/// Unlike `BufRead::lines`, a gigantic line neither allocates unboundedly
/// nor kills the connection: it is drained and reported as
/// [`InputLine::Oversized`] so the caller can answer with a structured
/// error and keep serving subsequent lines.
pub fn read_bounded_line(reader: &mut impl BufRead, max: usize) -> io::Result<InputLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut discarded = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            // EOF. A final unterminated line still counts as a line.
            return Ok(if discarding {
                InputLine::Oversized {
                    bytes: discarded + buf.len(),
                }
            } else if buf.is_empty() {
                InputLine::Eof
            } else {
                InputLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if discarding {
            discarded += newline.map_or(take, |i| i);
        } else {
            let content = newline.map_or(take, |i| i);
            buf.extend_from_slice(&available[..content]);
            if buf.len() > max {
                discarding = true;
                discarded = buf.len();
                buf.clear();
            }
        }
        reader.consume(take);
        if newline.is_some() {
            return Ok(if discarding {
                InputLine::Oversized { bytes: discarded }
            } else {
                InputLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::Diagnosis;
    use std::time::Duration;

    /// Parse a line that must be a job request.
    fn parse_job(line: &str, default_id: &str) -> Result<JobRequest, RequestError> {
        match parse_line(line, default_id)? {
            Request::Job(job) => Ok(*job),
            other => panic!("expected a job request, got {other:?}"),
        }
    }

    fn trace_json_line() -> String {
        let suite = tracebench::TraceBench::generate();
        let text = darshan::write::write_text(&suite.entries[0].trace);
        serde_json::to_string(&json!({
            "id": "t1",
            "trace": text,
            "model": "gpt-4o-mini",
            "top_k": 5,
            "merge": "flat",
            "use_rag": false,
        }))
        .unwrap()
    }

    #[test]
    fn request_round_trip() {
        let line = trace_json_line();
        let req = parse_job(&line, "fallback").unwrap();
        assert_eq!(req.id, "t1");
        assert_eq!(req.model, "gpt-4o-mini");
        assert_eq!(req.config.top_k, 5);
        assert_eq!(req.config.merge, MergeStrategy::Flat);
        assert!(!req.config.use_rag);
        assert!(!req.trace.records.is_empty());
    }

    #[test]
    fn missing_trace_is_an_error() {
        let err = parse_job(r#"{"id": "x"}"#, "d").unwrap_err();
        assert_eq!(err.id, "x", "error must carry the request's own id");
        assert!(err.message.contains("trace"), "{}", err.message);
    }

    #[test]
    fn bad_merge_is_an_error() {
        let line = r#"{"trace": "", "merge": "diagonal"}"#;
        let err = parse_job(line, "d").unwrap_err();
        assert_eq!(err.id, "d", "no id in the request, so the fallback applies");
        assert!(err.message.contains("diagonal"), "{}", err.message);
    }

    #[test]
    fn defaults_apply() {
        let suite = tracebench::TraceBench::generate();
        let text = darshan::write::write_text(&suite.entries[0].trace);
        let line = serde_json::to_string(&json!({ "trace": text })).unwrap();
        let req = parse_job(&line, "line-7").unwrap();
        assert_eq!(req.id, "line-7");
        assert_eq!(req.model, "gpt-4o");
        assert_eq!(req.config.top_k, AgentConfig::default().top_k);
    }

    #[test]
    fn stats_request_parses_and_renders() {
        match parse_line(r#"{"id": "probe-1", "stats": true}"#, "d").unwrap() {
            Request::Stats { id } => assert_eq!(id, "probe-1"),
            other => panic!("expected stats request, got {other:?}"),
        }
        // A job line still parses as a job through the same entry point.
        match parse_line(&trace_json_line(), "d").unwrap() {
            Request::Job(job) => assert_eq!(job.id, "t1"),
            other => panic!("expected job, got {other:?}"),
        }
        let stats = ServiceStats {
            jobs_completed: 7,
            cache_hits: 3,
            cache_misses: 4,
            persisted_entries: 5,
            journal_bytes: 1234,
            jobs_failed: 6,
            shed_total: 2,
            deadline_exceeded: 4,
            retries: 11,
            hedges: 9,
            hedge_wins: 5,
            faults_timeout: 3,
            faults_rate_limited: 2,
            faults_truncated: 1,
            ..Default::default()
        };
        let line = render_stats("probe-1", &stats, true, 2);
        let back: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(back.get("id").and_then(Value::as_str), Some("probe-1"));
        let s = back.get("stats").unwrap();
        assert_eq!(s.get("cache_hits").and_then(Value::as_i64), Some(3));
        assert_eq!(s.get("cache_misses").and_then(Value::as_i64), Some(4));
        assert_eq!(s.get("persisted_entries").and_then(Value::as_i64), Some(5));
        assert_eq!(s.get("journal_bytes").and_then(Value::as_i64), Some(1234));
        assert_eq!(s.get("persistence").and_then(Value::as_bool), Some(true));
        assert_eq!(s.get("queue_depth").and_then(Value::as_i64), Some(2));
        // Resilience counters ride along in the same probe.
        assert_eq!(s.get("jobs_failed").and_then(Value::as_i64), Some(6));
        assert_eq!(s.get("shed_total").and_then(Value::as_i64), Some(2));
        assert_eq!(s.get("deadline_exceeded").and_then(Value::as_i64), Some(4));
        assert_eq!(s.get("retries").and_then(Value::as_i64), Some(11));
        assert_eq!(s.get("hedges").and_then(Value::as_i64), Some(9));
        assert_eq!(s.get("hedge_wins").and_then(Value::as_i64), Some(5));
        assert_eq!(s.get("faults_timeout").and_then(Value::as_i64), Some(3));
        assert_eq!(
            s.get("faults_rate_limited").and_then(Value::as_i64),
            Some(2)
        );
        assert_eq!(s.get("faults_truncated").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn metrics_request_parses_and_renders() {
        match parse_line(r#"{"id": "m-1", "metrics": true}"#, "d").unwrap() {
            Request::Metrics { id } => assert_eq!(id, "m-1"),
            other => panic!("expected metrics request, got {other:?}"),
        }
        let service = ioobserve::MetricsRegistry::new();
        service.counter("service.jobs_completed").add(4);
        let h = service.histogram("service.exec_ns");
        for v in [100u64, 200, 300, 4_000] {
            h.record(v);
        }
        let process = ioobserve::MetricsRegistry::new();
        process.counter("llm.calls").add(9);
        process.float_counter("llm.cost_usd").add(0.5);
        process.gauge("service.queue_depth").set(3);
        let line = render_metrics("m-1", &service.snapshot(), &process.snapshot());
        let back: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(back.get("id").and_then(Value::as_str), Some("m-1"));
        let m = back.get("metrics").unwrap();
        let svc = m.get("service").unwrap();
        assert_eq!(
            svc.get("counters")
                .and_then(|c| c.get("service.jobs_completed"))
                .and_then(Value::as_i64),
            Some(4)
        );
        let exec = svc
            .get("histograms")
            .and_then(|h| h.get("service.exec_ns"))
            .unwrap();
        assert_eq!(exec.get("count").and_then(Value::as_i64), Some(4));
        assert_eq!(exec.get("min_ns").and_then(Value::as_i64), Some(100));
        assert_eq!(exec.get("max_ns").and_then(Value::as_i64), Some(4_000));
        let p50 = exec.get("p50_ns").and_then(Value::as_i64).unwrap();
        assert!((200..=213).contains(&p50), "p50 {p50} outside error bound");
        assert!(exec.get("p99_ns").is_some() && exec.get("p999_ns").is_some());
        let proc = m.get("process").unwrap();
        assert_eq!(
            proc.get("counters")
                .and_then(|c| c.get("llm.calls"))
                .and_then(Value::as_i64),
            Some(9)
        );
        assert_eq!(
            proc.get("counters")
                .and_then(|c| c.get("llm.cost_usd"))
                .and_then(Value::as_f64),
            Some(0.5)
        );
        assert_eq!(
            proc.get("gauges")
                .and_then(|g| g.get("service.queue_depth"))
                .and_then(Value::as_i64),
            Some(3)
        );
    }

    /// The exact reply bytes for every error kind are protocol surface:
    /// clients dispatch on `error_kind`, and scripts grep the `error`
    /// text. Pin them so a refactor cannot silently reshape them.
    #[test]
    fn error_replies_pin_exact_strings() {
        assert_eq!(
            render_error(
                "line-3",
                ErrorKind::OversizedLine,
                "request line of 5000000 bytes exceeds the 4194304 byte limit"
            ),
            r#"{"error":"request line of 5000000 bytes exceeds the 4194304 byte limit","error_kind":"oversized_line","id":"line-3"}"#
        );
        assert_eq!(
            render_error("line-1", ErrorKind::MalformedJson, "invalid JSON"),
            r#"{"error":"invalid JSON","error_kind":"malformed_json","id":"line-1"}"#
        );
        assert_eq!(
            render_error(
                "x",
                ErrorKind::InvalidRequest,
                "missing required string field \"trace\""
            ),
            r#"{"error":"missing required string field \"trace\"","error_kind":"invalid_request","id":"x"}"#
        );
        let unknown = SubmitError::UnknownModel("gpt-9".to_string());
        assert_eq!(
            render_error("j1", (&unknown).into(), &unknown.to_string()),
            r#"{"error":"unknown model profile \"gpt-9\"","error_kind":"unknown_model","id":"j1"}"#
        );
        let full = SubmitError::QueueFull;
        assert_eq!(
            render_error("j2", (&full).into(), &full.to_string()),
            r#"{"error":"job queue is full","error_kind":"queue_full","id":"j2"}"#
        );
        let down = SubmitError::ShuttingDown;
        assert_eq!(
            render_error("j3", (&down).into(), &down.to_string()),
            r#"{"error":"service is shutting down","error_kind":"shutdown","id":"j3"}"#
        );
        // Resilience-layer failures reuse the same reply shape. Each of
        // the five kinds is pinned byte-for-byte.
        let shed = JobFailure::DeadlineExceededQueued;
        assert_eq!(
            render_error("j4", (&shed).into(), &shed.message()),
            r#"{"error":"deadline expired while the job was queued; shed without executing","error_kind":"deadline_exceeded","id":"j4"}"#
        );
        let late = JobFailure::DeadlineExceeded;
        assert_eq!(
            render_error("j5", (&late).into(), &late.message()),
            r#"{"error":"deadline expired during execution","error_kind":"deadline_exceeded","id":"j5"}"#
        );
        let spent = JobFailure::RetriesExhausted {
            attempts: 4,
            last: simllm::FaultKind::Timeout,
        };
        assert_eq!(
            render_error("j6", (&spent).into(), &spent.message()),
            r#"{"error":"all 4 delivery attempts faulted (last: llm_timeout)","error_kind":"retries_exhausted","id":"j6"}"#
        );
        for (kind, wire) in [
            (simllm::FaultKind::Timeout, "llm_timeout"),
            (simllm::FaultKind::RateLimited, "llm_rate_limited"),
            (simllm::FaultKind::Truncated, "llm_truncated"),
        ] {
            let fault = JobFailure::Fault(kind);
            assert_eq!(
                render_error("j7", (&fault).into(), &fault.message()),
                format!(
                    r#"{{"error":"llm fault with retries disabled: {wire}","error_kind":"{wire}","id":"j7"}}"#
                )
            );
        }
    }

    #[test]
    fn trace_id_parses_and_validates() {
        let suite = tracebench::TraceBench::generate();
        let text = darshan::write::write_text(&suite.entries[0].trace);
        let line =
            serde_json::to_string(&json!({ "trace": text, "trace_id": "req-7.a:b_c" })).unwrap();
        let req = parse_job(&line, "d").unwrap();
        assert_eq!(req.trace_id.as_deref(), Some("req-7.a:b_c"));
        // Absent → None (the service generates one at submit time).
        let line = serde_json::to_string(&json!({ "trace": text })).unwrap();
        assert_eq!(parse_job(&line, "d").unwrap().trace_id, None);
        // Empty, oversized, non-string, and unsafe-charset ids rejected.
        for bad in [
            json!(""),
            json!("x".repeat(MAX_TRACE_ID_BYTES + 1)),
            json!(17),
            json!("has space"),
            json!("quote\""),
        ] {
            let line = serde_json::to_string(&json!({ "trace": text, "trace_id": bad })).unwrap();
            let err = parse_job(&line, "d").unwrap_err();
            assert_eq!(err.kind, ErrorKind::InvalidRequest, "{bad:?}");
            assert!(err.message.contains("trace_id"), "{}", err.message);
        }
    }

    #[test]
    fn deadline_ms_parses_and_validates() {
        let suite = tracebench::TraceBench::generate();
        let text = darshan::write::write_text(&suite.entries[0].trace);
        // Absent → no per-request deadline (the daemon default applies).
        let line = serde_json::to_string(&json!({ "trace": text })).unwrap();
        assert_eq!(parse_job(&line, "d").unwrap().deadline, None);
        // Present → the request carries its own deadline budget.
        let line = serde_json::to_string(&json!({ "trace": text, "deadline_ms": 250 })).unwrap();
        assert_eq!(
            parse_job(&line, "d").unwrap().deadline,
            Some(Duration::from_millis(250))
        );
        // Fractional milliseconds are honoured.
        let line = serde_json::to_string(&json!({ "trace": text, "deadline_ms": 0.5 })).unwrap();
        assert_eq!(
            parse_job(&line, "d").unwrap().deadline,
            Some(Duration::from_micros(500))
        );
        // Explicit null means "no deadline", same as absent.
        let line =
            serde_json::to_string(&json!({ "trace": text, "deadline_ms": Value::Null })).unwrap();
        assert_eq!(parse_job(&line, "d").unwrap().deadline, None);
        // Zero, negative, and non-numeric budgets are rejected.
        for bad in [json!(0), json!(-5), json!("fast"), json!(true)] {
            let line =
                serde_json::to_string(&json!({ "trace": text, "deadline_ms": bad })).unwrap();
            let err = parse_job(&line, "d").unwrap_err();
            assert_eq!(err.kind, ErrorKind::InvalidRequest, "{bad:?}");
            assert!(err.message.contains("deadline_ms"), "{}", err.message);
        }
    }

    #[test]
    fn failed_result_renders_as_error_reply() {
        let result = JobResult {
            id: "late-1".into(),
            diagnosis: Diagnosis {
                tool: "ioagent-gpt-4o".into(),
                text: String::new(),
                issues: vec![],
                references: vec![],
            },
            cached: false,
            worker: 0,
            metrics: crate::service::JobMetrics::default(),
            trace_id: "abc123-00000001".into(),
            failure: Some(JobFailure::DeadlineExceededQueued),
        };
        // A failed job is rendered as a structured error, never as a
        // (vacuous) diagnosis payload.
        assert_eq!(
            render_result(&result),
            r#"{"error":"deadline expired while the job was queued; shed without executing","error_kind":"deadline_exceeded","id":"late-1"}"#
        );
    }

    #[test]
    fn slo_request_parses_and_renders() {
        match parse_line(r#"{"id": "s-1", "slo": true}"#, "d").unwrap() {
            Request::Slo { id } => assert_eq!(id, "s-1"),
            other => panic!("expected slo request, got {other:?}"),
        }
        let decls = ioobserve::parse_slo_file("exec_p99 < 250ms over 60s").unwrap();
        let snap = RegistrySnapshot {
            window_ns: vec![60_000_000_000],
            histogram_windows: vec![(
                "service.exec_ns".to_string(),
                vec![HistogramSnapshot {
                    count: 9,
                    sum: 9 * 400_000_000,
                    min: 400_000_000,
                    max: 400_000_000,
                    p50: 400_000_000,
                    p90: 400_000_000,
                    p99: 400_000_000,
                    p999: 400_000_000,
                }],
            )],
            ..RegistrySnapshot::default()
        };
        let report = ioobserve::evaluate_slos(&decls, &[&snap]);
        let line = render_slo("s-1", &report);
        let back: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(back.get("id").and_then(Value::as_str), Some("s-1"));
        let slo = back.get("slo").unwrap();
        assert_eq!(slo.get("pass").and_then(Value::as_bool), Some(false));
        let check = &slo.get("checks").and_then(Value::as_array).unwrap()[0];
        assert_eq!(
            check.get("decl").and_then(Value::as_str),
            Some("exec_p99 < 250ms over 60s")
        );
        assert_eq!(
            check.get("observed_ns").and_then(Value::as_u64),
            Some(400_000_000)
        );
        assert_eq!(check.get("pass").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn windowed_metrics_render_and_round_trip() {
        use ioobserve::{VirtualClock, WindowSpec};
        use std::sync::Arc;
        let clock = Arc::new(VirtualClock::new());
        let spec = WindowSpec::new(
            Arc::clone(&clock) as Arc<dyn ioobserve::Clock>,
            1_000_000_000,
            &[10_000_000_000, 60_000_000_000],
        );
        let service = ioobserve::MetricsRegistry::windowed(spec);
        service.counter("service.jobs_completed").add(8);
        service.counter("service.cache_hits").add(2);
        service.counter("service.errors").add(1);
        service.counter("service.retries").add(5);
        service.counter("service.hedges").add(3);
        service.counter("service.shed_total").add(1);
        let h = service.histogram("service.exec_ns");
        h.record(5_000_000);
        // An idle histogram: lifetime-empty, so its windows are empty too.
        service.histogram("service.persist_ns");
        let process = ioobserve::MetricsRegistry::new();
        let line = render_metrics("m-2", &service.snapshot(), &process.snapshot());
        let back: Value = serde_json::from_str(&line).unwrap();
        let svc = back.get("metrics").and_then(|m| m.get("service")).unwrap();

        // Offered windows and per-window counter totals are reported.
        assert_eq!(
            svc.get("window_s").and_then(Value::as_array).map(Vec::len),
            Some(2)
        );
        assert_eq!(
            svc.get("counter_windows")
                .and_then(|c| c.get("service.jobs_completed"))
                .and_then(Value::as_array)
                .map(|t| t.iter().filter_map(Value::as_u64).collect::<Vec<_>>()),
            Some(vec![8, 8])
        );
        // Rates: 8 jobs in 10s = 0.8 jobs/s, hit ratio 2/8.
        let rates = svc.get("rates").and_then(Value::as_array).unwrap();
        assert!((rates[0].get("jobs_per_s").and_then(Value::as_f64).unwrap() - 0.8).abs() < 1e-9);
        assert!(
            (rates[0]
                .get("cache_hit_ratio")
                .and_then(Value::as_f64)
                .unwrap()
                - 0.25)
                .abs()
                < 1e-9
        );
        assert!(
            (rates[0]
                .get("errors_per_s")
                .and_then(Value::as_f64)
                .unwrap()
                - 0.1)
                .abs()
                < 1e-9
        );

        // Histogram windows: populated window carries quantiles, empty
        // window reports null (not zero) statistics.
        let exec = svc
            .get("histograms")
            .and_then(|h| h.get("service.exec_ns"))
            .unwrap();
        assert_eq!(exec.get("sum_ns").and_then(Value::as_u64), Some(5_000_000));
        let windows = exec.get("windows").and_then(Value::as_array).unwrap();
        assert_eq!(windows[0].get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(
            windows[0].get("p99_ns").and_then(Value::as_u64),
            Some(5_000_000)
        );
        let idle = svc
            .get("histograms")
            .and_then(|h| h.get("service.persist_ns"))
            .and_then(|h| h.get("windows"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(idle[0].get("count").and_then(Value::as_u64), Some(0));
        assert!(
            idle[0].get("p99_ns").unwrap().is_null(),
            "empty windows must report null quantiles, not 0"
        );

        // Resilience counters participate in the same windowing: both
        // offered windows carry the lifetime-so-far totals.
        for (name, want) in [
            ("service.retries", 5u64),
            ("service.hedges", 3),
            ("service.shed_total", 1),
        ] {
            assert_eq!(
                svc.get("counter_windows")
                    .and_then(|c| c.get(name))
                    .and_then(Value::as_array)
                    .map(|t| t.iter().filter_map(Value::as_u64).collect::<Vec<_>>()),
                Some(vec![want, want]),
                "{name}"
            );
        }

        // The wire format reconstructs into a snapshot the SLO engine
        // can evaluate: an over-bound p99 in the 10s window fails.
        let rebuilt = snapshot_from_metrics_json(svc);
        assert_eq!(rebuilt.window_ns, vec![10_000_000_000, 60_000_000_000]);
        let decls = ioobserve::parse_slo_file("exec_p99 < 1ms over 10s").unwrap();
        let report = ioobserve::evaluate_slos(&decls, &[&rebuilt]);
        assert!(!report.pass(), "5ms p99 must violate the 1ms bound");
        // And the indeterminate (empty-window) metric still passes.
        let decls = ioobserve::parse_slo_file("persist_p99 < 1ns over 10s").unwrap();
        assert!(ioobserve::evaluate_slos(&decls, &[&rebuilt]).pass());

        // Rotation: once the clock moves past the short window, the
        // resilience counters age out of the 10s view but survive in
        // the 60s one — stale retries must not pollute fresh rates.
        clock.advance(11_000_000_000);
        let line = render_metrics("m-3", &service.snapshot(), &process.snapshot());
        let back: Value = serde_json::from_str(&line).unwrap();
        let svc = back.get("metrics").and_then(|m| m.get("service")).unwrap();
        assert_eq!(
            svc.get("counter_windows")
                .and_then(|c| c.get("service.retries"))
                .and_then(Value::as_array)
                .map(|t| t.iter().filter_map(Value::as_u64).collect::<Vec<_>>()),
            Some(vec![0, 5]),
            "retries must age out of the 10s window but stay in the 60s one"
        );
    }

    #[test]
    fn malformed_json_carries_kind() {
        let err = parse_line("{not json", "line-9").unwrap_err();
        assert_eq!(err.kind, ErrorKind::MalformedJson);
        assert_eq!(err.id, "line-9");
        let err = parse_job(r#"{"id": "x"}"#, "d").unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
    }

    #[test]
    fn bounded_reader_passes_normal_lines() {
        let mut input = io::Cursor::new(b"one\ntwo\nthree".to_vec());
        assert_eq!(
            read_bounded_line(&mut input, 16).unwrap(),
            InputLine::Line("one".into())
        );
        assert_eq!(
            read_bounded_line(&mut input, 16).unwrap(),
            InputLine::Line("two".into())
        );
        // Unterminated final line still delivered, then EOF.
        assert_eq!(
            read_bounded_line(&mut input, 16).unwrap(),
            InputLine::Line("three".into())
        );
        assert_eq!(read_bounded_line(&mut input, 16).unwrap(), InputLine::Eof);
    }

    #[test]
    fn bounded_reader_drains_oversized_line_and_resynchronises() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"after\n");
        let mut input = io::Cursor::new(data);
        assert_eq!(
            read_bounded_line(&mut input, 10).unwrap(),
            InputLine::Oversized { bytes: 100 }
        );
        // The stream survives: the next line parses normally.
        assert_eq!(
            read_bounded_line(&mut input, 10).unwrap(),
            InputLine::Line("after".into())
        );
        // Oversized line at EOF without a trailing newline.
        let mut input = io::Cursor::new(vec![b'y'; 50]);
        assert_eq!(
            read_bounded_line(&mut input, 10).unwrap(),
            InputLine::Oversized { bytes: 50 }
        );
    }

    #[test]
    fn result_renders_parseable_json() {
        let result = JobResult {
            id: "j".into(),
            diagnosis: Diagnosis {
                tool: "ioagent-gpt-4o".into(),
                text: "line one\nline \"two\"".into(),
                issues: vec![tracebench::IssueLabel::SmallWrite],
                references: vec!["[A, B 2020]".into()],
            },
            cached: false,
            worker: 2,
            metrics: crate::service::JobMetrics {
                llm_calls: 3,
                exec: Duration::from_millis(5),
                ..Default::default()
            },
            trace_id: "abc123-00000001".into(),
            failure: None,
        };
        let line = render_result(&result);
        let back: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(back.get("id").and_then(Value::as_str), Some("j"));
        assert_eq!(back.get("llm_calls").and_then(Value::as_i64), Some(3));
        assert_eq!(back.get("worker").and_then(Value::as_i64), Some(2));
        assert_eq!(
            back.get("trace_id").and_then(Value::as_str),
            Some("abc123-00000001"),
            "the job's trace context is echoed in the reply"
        );
        // Issue labels use the documented stable snake_case keys.
        assert_eq!(
            back.get("issues"),
            Some(&Value::Array(vec![Value::String("small_write".into())]))
        );
        assert_eq!(
            back.get("text").and_then(Value::as_str),
            Some("line one\nline \"two\"")
        );
    }
}
