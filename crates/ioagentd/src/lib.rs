//! `ioagentd` — a long-lived, concurrent batch-diagnosis service over the
//! IOAgent pipeline.
//!
//! The per-trace CLI (`ioagent`) rebuilds the knowledge index and tears
//! everything down for every invocation. This crate provides the serving
//! layer the ROADMAP's production north star needs:
//!
//! - **Shared knowledge index** ([`service::Retriever`] behind an `Arc`):
//!   built once at startup, shared read-only by all workers.
//! - **Bounded job queue** ([`queue::BoundedQueue`]): producers block when
//!   the workers fall behind — backpressure all the way to the socket.
//! - **Worker pool** ([`service::DiagnosisService`]): N threads, each job
//!   diagnosed with private models so results are bit-identical to a
//!   sequential [`ioagent_core::IoAgent`] run and usage accounting is
//!   strictly per job.
//! - **LRU result cache** ([`cache::LruCache`]): repeated submissions of
//!   the same (trace, model, config) are answered with zero LLM calls.
//! - **Persistence** (`iostore` via [`ServiceConfig::state_dir`]): the
//!   LRU reads through to a disk-backed result journal and the knowledge
//!   index loads from a versioned snapshot, so restarts answer
//!   previously-seen jobs with zero LLM calls too. Off by default;
//!   byte-identical results either way.
//! - **NDJSON front end** ([`protocol`] + the `ioagentd` binary): newline
//!   delimited JSON requests on stdin or TCP, responses in order on the
//!   same transport. Request lines are size-capped and malformed lines
//!   are answered with structured errors instead of poisoning the
//!   stream; `{"stats": true}` probes the service counters in-band.

pub mod cache;
pub mod protocol;
pub mod queue;
pub mod resilience;
pub mod service;
pub mod top;

pub use cache::LruCache;
pub use queue::BoundedQueue;
pub use resilience::{HedgePolicy, JobFailure, ResilienceCounters, ResiliencePolicy, ResilientLlm};
pub use service::{
    DiagnosisService, IndexProvenance, IvfParams, JobMetrics, JobRequest, JobResult, JobTicket,
    Retriever, ServiceConfig, ServiceStats, SubmitError,
};

#[cfg(test)]
mod tests {
    use super::*;
    use tracebench::TraceBench;

    #[test]
    fn service_diagnoses_and_accounts() {
        let suite = TraceBench::generate();
        let service = DiagnosisService::start(ServiceConfig::with_workers(2));
        let jobs: Vec<JobRequest> = suite
            .entries
            .iter()
            .take(3)
            .map(|e| JobRequest::new(e.spec.id, e.trace.clone(), "gpt-4o-mini"))
            .collect();
        let results = service.run_batch(jobs).unwrap();
        assert_eq!(results.len(), 3);
        for (r, e) in results.iter().zip(suite.entries.iter()) {
            assert_eq!(r.id, e.spec.id);
            assert!(!r.cached);
            assert!(r.metrics.llm_calls > 0);
            assert!(r.metrics.cost_usd > 0.0);
            assert!(!r.diagnosis.text.is_empty());
        }
        let stats = service.stats();
        assert_eq!(stats.jobs_completed, 3);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(
            stats.llm_calls,
            results
                .iter()
                .map(|r| r.metrics.llm_calls as u64)
                .sum::<u64>()
        );
        service.shutdown();
    }

    #[test]
    fn unknown_model_rejected_before_enqueue() {
        let suite = TraceBench::generate();
        let service = DiagnosisService::start(ServiceConfig::with_workers(1));
        let bad = JobRequest::new("x", suite.entries[0].trace.clone(), "gpt-17");
        assert_eq!(
            service.submit(bad).unwrap_err(),
            SubmitError::UnknownModel("gpt-17".into())
        );
        // An unknown *reflection* model would panic inside a worker thread
        // (profile_or_panic) and wedge every waiter — it must be rejected
        // at submit time too, and the workers must stay alive after.
        let mut bad_reflection = JobRequest::new("y", suite.entries[0].trace.clone(), "gpt-4o");
        bad_reflection.config.reflection_model = "bogus-mini".into();
        assert_eq!(
            service.submit(bad_reflection).unwrap_err(),
            SubmitError::UnknownModel("bogus-mini".into())
        );
        assert_eq!(service.stats().jobs_completed, 0);
        let ok = JobRequest::new("z", suite.entries[0].trace.clone(), "gpt-4o-mini");
        assert!(!service.submit(ok).unwrap().wait().diagnosis.text.is_empty());
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let suite = TraceBench::generate();
        let service = DiagnosisService::start(ServiceConfig::with_workers(1));
        let retriever = service.retriever();
        service.shutdown();
        // A fresh service on the same index still works (index survives).
        let service2 =
            DiagnosisService::with_shared_index(ServiceConfig::with_workers(1), retriever);
        let job = JobRequest::new("y", suite.entries[0].trace.clone(), "gpt-4o-mini");
        let result = service2.submit(job).unwrap().wait();
        assert!(!result.diagnosis.text.is_empty());
    }
}
