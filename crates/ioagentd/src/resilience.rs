//! Deadlines, bounded retries, and hedged requests around the LLM calls
//! inside one job.
//!
//! [`ResilientLlm`] wraps a per-job [`SimLlm`] and implements
//! [`LanguageModel`], so the agent pipeline needs no changes: every
//! completion the pipeline issues flows through the resilience loop.
//!
//! - **Bounded retries**: an injected fault triggers up to
//!   [`ResiliencePolicy::max_retries`] re-deliveries with deterministic
//!   decorrelated backoff. The backoff draw comes from the simulator's
//!   attempt-keyed fault domain (`rng_for_attempt`, lane
//!   `0x4000_0000 | round`), so wait times replay bit-identically too.
//! - **Hedged requests**: after a delay derived from the live
//!   `service.llm_attempt_ns` quantile, a duplicate of the in-flight
//!   attempt launches on hedge lane `0x8000_0000 | round`. First success
//!   wins; the loser is cancelled cooperatively mid-sleep via the
//!   [`CancelToken`] on its request. Because content draws are keyed by
//!   (model, prompt, salt) — never by attempt or timing — the winning
//!   completion is byte-identical whichever lane delivers it.
//! - **Deadlines**: an absolute per-job deadline caps the whole loop.
//!   On expiry every in-flight attempt is cancelled and the job fails
//!   with `deadline_exceeded`.
//!
//! The first failure latches: subsequent completions on the same job
//! fail fast with an empty completion, so a doomed job stops burning
//! simulated spend, and the worker reports one [`JobFailure`] for the
//! whole job.

use ioobserve::{Counter, Histogram};
use simllm::{
    rng::rng_for_attempt, CancelToken, Completion, CompletionRequest, FaultKind, LanguageModel,
    LlmError, ModelProfile, SimLlm,
};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Attempt lane for the hedged duplicate of retry round `round`.
const HEDGE_LANE: u32 = 0x8000_0000;
/// Attempt lane for the backoff draw before retry round `round`.
const BACKOFF_LANE: u32 = 0x4000_0000;
/// Hedge delay falls back to [`HedgePolicy::min_delay`] until the
/// attempt-latency histogram has this many samples.
const HEDGE_WARMUP_SAMPLES: u64 = 20;

/// When to launch a hedged duplicate of an in-flight attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Launch the hedge once the attempt has been in flight longer than
    /// this quantile of observed attempt latency (e.g. `0.95`).
    pub quantile: f64,
    /// Floor on the hedge delay; also the cold-start delay while the
    /// latency histogram is still warming up.
    pub min_delay: Duration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            quantile: 0.95,
            min_delay: Duration::from_millis(5),
        }
    }
}

/// Retry/backoff/hedge knobs for the LLM calls inside one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Re-deliveries allowed after the first faulted attempt
    /// (`None` = unbounded: retry until success or deadline).
    pub max_retries: Option<u32>,
    /// Decorrelated-jitter backoff floor before a retry.
    pub backoff_base: Duration,
    /// Backoff ceiling (the jitter range grows 3× per round up to this).
    pub backoff_cap: Duration,
    /// Hedged-request policy (`None` disables hedging).
    pub hedge: Option<HedgePolicy>,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: Some(2),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            hedge: None,
        }
    }
}

impl ResiliencePolicy {
    /// Infinite patience: no retry bound, no backoff, no hedging. What a
    /// job gets when only a deadline is configured — the deadline alone
    /// bounds it.
    pub fn unbounded() -> Self {
        ResiliencePolicy {
            max_retries: None,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            hedge: None,
        }
    }

    /// Builder-style retry bound.
    pub fn retries(mut self, max: u32) -> Self {
        self.max_retries = Some(max);
        self
    }

    /// Builder-style backoff range.
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Builder-style hedging policy.
    pub fn hedged(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }
}

/// Why a job produced no diagnosis. Carried on [`crate::JobResult`] and
/// rendered as a protocol error reply with the matching `error_kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFailure {
    /// The deadline expired while the job sat in the bounded queue; it
    /// was shed at dequeue without executing.
    DeadlineExceededQueued,
    /// The deadline expired mid-execution.
    DeadlineExceeded,
    /// Every allowed delivery attempt faulted.
    RetriesExhausted {
        /// Delivery attempts made (including hedges).
        attempts: u32,
        /// The fault that ended the final round.
        last: FaultKind,
    },
    /// A fault with retries disabled (`max_retries == 0`).
    Fault(FaultKind),
}

impl JobFailure {
    /// The protocol `error_kind` for this failure.
    pub fn error_kind(&self) -> &'static str {
        match self {
            JobFailure::DeadlineExceededQueued | JobFailure::DeadlineExceeded => {
                "deadline_exceeded"
            }
            JobFailure::RetriesExhausted { .. } => "retries_exhausted",
            JobFailure::Fault(kind) => kind.as_str(),
        }
    }

    /// Human-readable detail for the protocol error reply.
    pub fn message(&self) -> String {
        match self {
            JobFailure::DeadlineExceededQueued => {
                "deadline expired while the job was queued; shed without executing".to_string()
            }
            JobFailure::DeadlineExceeded => "deadline expired during execution".to_string(),
            JobFailure::RetriesExhausted { attempts, last } => {
                format!(
                    "all {attempts} delivery attempts faulted (last: {})",
                    last.as_str()
                )
            }
            JobFailure::Fault(kind) => {
                format!("llm fault with retries disabled: {}", kind.as_str())
            }
        }
    }
}

/// The service-registry instruments the resilience loop records into.
/// Resolved once per service; cloning shares the underlying atomics.
#[derive(Clone)]
pub struct ResilienceCounters {
    /// Retry rounds entered (`service.retries`).
    pub retries: Arc<Counter>,
    /// Hedged duplicates launched (`service.hedges`).
    pub hedges: Arc<Counter>,
    /// Races the hedge won (`service.hedge_wins`).
    pub hedge_wins: Arc<Counter>,
    /// Injected timeouts observed (`service.faults.timeout`).
    pub fault_timeout: Arc<Counter>,
    /// Injected rate limits observed (`service.faults.rate_limited`).
    pub fault_rate_limited: Arc<Counter>,
    /// Injected truncations observed (`service.faults.truncated`).
    pub fault_truncated: Arc<Counter>,
    /// Latency of successful delivery attempts
    /// (`service.llm_attempt_ns`) — the quantile source for hedge delays.
    pub attempt_ns: Arc<Histogram>,
}

impl ResilienceCounters {
    /// Counters on a private lifetime-only registry, for using
    /// [`ResilientLlm`] outside a service (unit tests, ad-hoc tools).
    pub fn detached() -> Self {
        let registry = ioobserve::MetricsRegistry::new();
        ResilienceCounters {
            retries: registry.counter("service.retries"),
            hedges: registry.counter("service.hedges"),
            hedge_wins: registry.counter("service.hedge_wins"),
            fault_timeout: registry.counter("service.faults.timeout"),
            fault_rate_limited: registry.counter("service.faults.rate_limited"),
            fault_truncated: registry.counter("service.faults.truncated"),
            attempt_ns: registry.histogram("service.llm_attempt_ns"),
        }
    }

    fn fault(&self, kind: FaultKind) -> &Counter {
        match kind {
            FaultKind::Timeout => &self.fault_timeout,
            FaultKind::RateLimited => &self.fault_rate_limited,
            FaultKind::Truncated => &self.fault_truncated,
        }
    }
}

/// One race round's outcome.
enum RoundOutcome {
    Won(Completion),
    Fault {
        kind: FaultKind,
        retry_after: Option<Duration>,
    },
    Deadline,
}

/// A [`LanguageModel`] that delivers its inner [`SimLlm`]'s completions
/// under a deadline, with bounded retries and hedged requests. See the
/// module docs for the determinism argument.
pub struct ResilientLlm {
    inner: SimLlm,
    policy: ResiliencePolicy,
    deadline: Option<Instant>,
    counters: ResilienceCounters,
    failure: Mutex<Option<JobFailure>>,
}

impl ResilientLlm {
    /// Wrap `inner` with `policy`, failing the job outright at
    /// `deadline` (when set).
    pub fn new(
        inner: SimLlm,
        policy: ResiliencePolicy,
        deadline: Option<Instant>,
        counters: ResilienceCounters,
    ) -> Self {
        ResilientLlm {
            inner,
            policy,
            deadline,
            counters,
            failure: Mutex::new(None),
        }
    }

    /// The wrapped simulator's cumulative usage.
    pub fn usage(&self) -> simllm::Usage {
        self.inner.usage()
    }

    /// The first failure this job hit, if any. The worker calls this
    /// once after the pipeline finishes to decide success vs error.
    pub fn take_failure(&self) -> Option<JobFailure> {
        self.failure
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }

    fn fail(&self, failure: JobFailure) {
        let mut slot = self
            .failure
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // First failure wins; later calls fail fast without overwriting.
        slot.get_or_insert(failure);
    }

    fn failed(&self) -> bool {
        self.failure
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
    }

    /// Time left before the deadline; `None` with no deadline, `ZERO`
    /// once expired.
    fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// When to launch the hedge: the configured quantile of observed
    /// successful-attempt latency, floored by `min_delay` (which also
    /// covers the cold start before the histogram has samples).
    fn hedge_delay(&self) -> Option<Duration> {
        let hedge = self.policy.hedge.as_ref()?;
        let observed = if self.counters.attempt_ns.count() >= HEDGE_WARMUP_SAMPLES {
            Duration::from_nanos(self.counters.attempt_ns.quantile(hedge.quantile))
        } else {
            Duration::ZERO
        };
        Some(observed.max(hedge.min_delay))
    }

    /// Deterministic decorrelated-jitter backoff before retry `round`
    /// (≥ 1): uniform in `[base, min(base·3^round, cap)]`, drawn from
    /// the attempt-keyed fault domain so reruns replay the same waits.
    fn backoff(&self, request: &CompletionRequest, round: u32) -> Duration {
        let base = self.policy.backoff_base.as_nanos() as u64;
        let cap = self.policy.backoff_cap.as_nanos() as u64;
        if base == 0 || cap <= base {
            return self.policy.backoff_base;
        }
        let hi = base
            .saturating_mul(3u64.saturating_pow(round.min(32)))
            .min(cap);
        let full = format!("{}\n{}", request.system, request.user);
        let mut rng = rng_for_attempt(
            self.inner.name(),
            &full,
            request.salt,
            BACKOFF_LANE | (round & !BACKOFF_LANE),
        );
        use rand::Rng;
        Duration::from_nanos(rng.gen_range(base..=hi))
    }

    /// Run one retry round: the primary attempt on lane `round`, plus —
    /// past the hedge delay — a duplicate on the hedge lane. First
    /// success wins and cancels the other; `attempts` counts every
    /// launched delivery attempt.
    fn race(&self, request: &CompletionRequest, round: u32, attempts: &mut u32) -> RoundOutcome {
        let primary_req = request
            .clone()
            .with_attempt(round)
            .with_cancel(CancelToken::new());
        *attempts += 1;

        let hedge_delay = self.hedge_delay();
        if hedge_delay.is_none() && self.deadline.is_none() {
            // No hedging and nothing to enforce mid-attempt: run inline,
            // without a racing thread.
            return match self.timed_attempt(&primary_req) {
                Ok(completion) => RoundOutcome::Won(completion),
                Err(LlmError::Fault { kind, retry_after }) => {
                    self.counters.fault(kind).inc();
                    RoundOutcome::Fault { kind, retry_after }
                }
                // Nothing cancels the token on this path.
                Err(LlmError::Cancelled) => unreachable!("inline attempt has no canceller"),
            };
        }

        let hedge_req = hedge_delay.map(|_| {
            request
                .clone()
                .with_attempt(HEDGE_LANE | (round & !HEDGE_LANE))
                .with_cancel(CancelToken::new())
        });
        let launch = Instant::now();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(bool, Result<Completion, LlmError>, Instant)>();
            {
                let tx = tx.clone();
                let req = &primary_req;
                scope.spawn(move || {
                    let outcome = self.timed_attempt(req);
                    let _ = tx.send((false, outcome, Instant::now()));
                });
            }
            let mut hedge_at = hedge_delay.map(|d| launch + d);
            let mut outstanding = 1u32;
            let mut last_fault: Option<(FaultKind, Option<Duration>)> = None;
            let cancel_all = || {
                primary_req.cancel.cancel();
                if let Some(h) = &hedge_req {
                    h.cancel.cancel();
                }
            };
            loop {
                let now = Instant::now();
                if let Some(deadline) = self.deadline {
                    if now >= deadline {
                        cancel_all();
                        return RoundOutcome::Deadline;
                    }
                }
                if let Some(at) = hedge_at {
                    if now >= at {
                        hedge_at = None;
                        let hedge = hedge_req.as_ref().expect("hedge_at implies hedge_req");
                        self.counters.hedges.inc();
                        *attempts += 1;
                        outstanding += 1;
                        let tx = tx.clone();
                        scope.spawn(move || {
                            let outcome = self.timed_attempt(hedge);
                            let _ = tx.send((true, outcome, Instant::now()));
                        });
                    }
                }
                // Sleep until the next event: a result, the hedge launch,
                // or the deadline.
                let mut wait = Duration::from_millis(50);
                if let Some(at) = hedge_at {
                    wait = wait.min(at.saturating_duration_since(now));
                }
                if let Some(deadline) = self.deadline {
                    wait = wait.min(deadline.saturating_duration_since(now));
                }
                match rx.recv_timeout(wait) {
                    Ok((is_hedge, Ok(completion), finish)) => {
                        cancel_all();
                        if is_hedge {
                            self.counters.hedge_wins.inc();
                            // The simulator's draws are deterministic, so
                            // the loser's projected finish — and hence the
                            // exact margin the hedge won by — is knowable.
                            let projected =
                                launch + self.inner.preview_attempt(&primary_req).latency;
                            let margin = projected.saturating_duration_since(finish);
                            ioobserve::metrics()
                                .histogram("hedge.win_margin_ns")
                                .record_duration(margin);
                        }
                        return RoundOutcome::Won(completion);
                    }
                    Ok((_, Err(LlmError::Fault { kind, retry_after }), _)) => {
                        self.counters.fault(kind).inc();
                        outstanding -= 1;
                        last_fault = Some((kind, retry_after));
                        if outstanding == 0 {
                            // Every launched attempt faulted; hand the
                            // round back to the retry loop rather than
                            // waiting out a not-yet-launched hedge.
                            return RoundOutcome::Fault { kind, retry_after };
                        }
                    }
                    Ok((_, Err(LlmError::Cancelled), _)) => {
                        outstanding -= 1;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // All senders gone with no success: both attempts
                        // resolved and were handled above.
                        let (kind, retry_after) =
                            last_fault.expect("disconnected without any outcome");
                        return RoundOutcome::Fault { kind, retry_after };
                    }
                }
            }
        })
    }

    /// One delivery attempt, recording successful-attempt latency into
    /// the hedge-delay quantile source.
    fn timed_attempt(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        let start = Instant::now();
        let outcome = self.inner.try_complete(request);
        if outcome.is_ok() {
            self.counters.attempt_ns.record_duration(start.elapsed());
        }
        outcome
    }

    /// The full resilience loop for one completion.
    fn complete_resilient(&self, request: &CompletionRequest) -> Result<Completion, JobFailure> {
        let mut round = 0u32;
        let mut attempts = 0u32;
        let mut retry_hint: Option<Duration> = None;
        loop {
            if round > 0 {
                self.counters.retries.inc();
                let mut wait = self.backoff(request, round);
                if let Some(hint) = retry_hint.take() {
                    wait = wait.max(hint);
                }
                if let Some(remaining) = self.remaining() {
                    if remaining.is_zero() {
                        return Err(JobFailure::DeadlineExceeded);
                    }
                    wait = wait.min(remaining);
                }
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
            if self.remaining().is_some_and(|r| r.is_zero()) {
                return Err(JobFailure::DeadlineExceeded);
            }
            match self.race(request, round, &mut attempts) {
                RoundOutcome::Won(completion) => {
                    ioobserve::metrics()
                        .histogram("llm.attempts")
                        .record(attempts as u64);
                    return Ok(completion);
                }
                RoundOutcome::Fault { kind, retry_after } => match self.policy.max_retries {
                    Some(0) => return Err(JobFailure::Fault(kind)),
                    Some(max) if round >= max => {
                        return Err(JobFailure::RetriesExhausted {
                            attempts,
                            last: kind,
                        })
                    }
                    _ => {
                        retry_hint = retry_after;
                        round += 1;
                    }
                },
                RoundOutcome::Deadline => return Err(JobFailure::DeadlineExceeded),
            }
        }
    }
}

impl LanguageModel for ResilientLlm {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn profile(&self) -> &ModelProfile {
        self.inner.profile()
    }

    fn complete(&self, request: &CompletionRequest) -> Completion {
        // A job that already failed stops burning attempts and spend:
        // every remaining pipeline call short-circuits to an empty
        // completion, which the agent's parsers treat as "no findings".
        if self.failed() {
            return empty_completion();
        }
        match self.complete_resilient(request) {
            Ok(completion) => completion,
            Err(failure) => {
                self.fail(failure);
                empty_completion()
            }
        }
    }
}

/// The fail-fast placeholder: no text, no tokens, no cost. Downstream
/// parsers yield no issues/references from it, and the worker discards
/// the whole diagnosis anyway once it sees the job's failure.
fn empty_completion() -> Completion {
    Completion {
        text: String::new(),
        input_tokens: 0,
        output_tokens: 0,
        truncated: false,
        retention: 1.0,
        cost_usd: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::{FaultPlan, FaultSpec, LatencyProfile};

    fn request() -> CompletionRequest {
        CompletionRequest::new(
            "You are an HPC I/O expert.",
            "### TASK: diagnose\nEVIDENCE nprocs=8\nEVIDENCE posix.writes=1000",
        )
    }

    /// Find a salt whose attempt-0 draw faults (deterministic search).
    fn faulting_salt(model: &SimLlm, req: &CompletionRequest) -> u64 {
        (0..4096)
            .find(|&s| {
                model
                    .preview_attempt(&req.clone().with_salt(s))
                    .fault
                    .is_some()
            })
            .expect("no faulting salt in 4096 draws")
    }

    fn flaky() -> SimLlm {
        SimLlm::new("gpt-4o-mini").with_fault_plan(
            FaultPlan::new()
                .with_profile(LatencyProfile::flat(Duration::from_micros(50)))
                .with_faults(FaultSpec {
                    timeout_probability: 0.3,
                    timeout: Duration::from_micros(100),
                    rate_limit_probability: 0.0,
                    retry_after: Duration::ZERO,
                    truncate_probability: 0.0,
                }),
        )
    }

    #[test]
    fn retries_recover_from_faults_deterministically() {
        let model = flaky();
        let salt = faulting_salt(&model, &request());
        let req = request().with_salt(salt);
        let resilient = ResilientLlm::new(
            flaky(),
            ResiliencePolicy::default()
                .backoff(Duration::from_micros(10), Duration::from_micros(100)),
            None,
            ResilienceCounters::detached(),
        );
        let delivered = resilient.complete(&req);
        assert!(resilient.take_failure().is_none(), "retries should recover");
        assert!(resilient.counters.retries.get() >= 1, "no retry happened");
        // Content matches a fault-free model exactly.
        let clean = SimLlm::new("gpt-4o-mini");
        assert_eq!(delivered.text, clean.complete(&req).text);
    }

    #[test]
    fn zero_retries_surfaces_the_fault() {
        let model = flaky();
        let salt = faulting_salt(&model, &request());
        let req = request().with_salt(salt);
        let resilient = ResilientLlm::new(
            flaky(),
            ResiliencePolicy::default().retries(0),
            None,
            ResilienceCounters::detached(),
        );
        let completion = resilient.complete(&req);
        assert!(completion.text.is_empty());
        assert_eq!(
            resilient.take_failure(),
            Some(JobFailure::Fault(FaultKind::Timeout))
        );
        assert_eq!(
            resilient.usage().calls,
            0,
            "failed job must not commit usage"
        );
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        // Timeout probability 1.0: every lane faults, retries must exhaust.
        let always_faults = || {
            SimLlm::new("gpt-4o-mini").with_fault_plan(FaultPlan::new().with_faults(FaultSpec {
                timeout_probability: 1.0,
                timeout: Duration::from_micros(10),
                ..FaultSpec::default()
            }))
        };
        let resilient = ResilientLlm::new(
            always_faults(),
            ResiliencePolicy::default()
                .retries(2)
                .backoff(Duration::from_micros(10), Duration::from_micros(50)),
            None,
            ResilienceCounters::detached(),
        );
        resilient.complete(&request());
        assert_eq!(
            resilient.take_failure(),
            Some(JobFailure::RetriesExhausted {
                attempts: 3,
                last: FaultKind::Timeout
            })
        );
        assert_eq!(resilient.counters.fault_timeout.get(), 3);
        // Later completions fail fast: no further attempts.
        resilient.fail(JobFailure::Fault(FaultKind::Timeout));
        resilient.complete(&request());
        assert_eq!(resilient.counters.fault_timeout.get(), 3);
    }

    #[test]
    fn deadline_expiry_cancels_the_attempt() {
        let slow = SimLlm::new("gpt-4o-mini").with_fault_plan(
            FaultPlan::new().with_profile(LatencyProfile::flat(Duration::from_secs(30))),
        );
        let started = Instant::now();
        let resilient = ResilientLlm::new(
            slow,
            ResiliencePolicy::unbounded(),
            Some(Instant::now() + Duration::from_millis(20)),
            ResilienceCounters::detached(),
        );
        let completion = resilient.complete(&request());
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "deadline ignored"
        );
        assert!(completion.text.is_empty());
        assert_eq!(resilient.take_failure(), Some(JobFailure::DeadlineExceeded));
    }

    #[test]
    fn hedge_wins_against_a_straggling_primary() {
        // Primary lane hangs for seconds; hedge lane (no tail, flat fast
        // profile on its attempt draw) finishes in microseconds. Build a
        // plan where attempt 0 draws a timeout-free but huge straggle:
        // easiest deterministic construction is a fault-free plan whose
        // tail fires on lane 0 but not on the hedge lane — search salts.
        let plan = FaultPlan::new()
            .with_profile(LatencyProfile::flat(Duration::from_micros(200)))
            .with_tail(simllm::TailSpec {
                probability: 0.5,
                lognormal_sigma: 0.1,
                median_multiplier: 20_000.0, // 200µs → 4s straggle
                pareto_alpha: 0.0,
                pareto_weight: 0.0,
                max_multiplier: 50_000.0,
            });
        let model = || SimLlm::new("gpt-4o-mini").with_fault_plan(plan.clone());
        let probe = model();
        let salt = (0..4096)
            .find(|&s| {
                let slow = probe.preview_attempt(&request().with_salt(s).with_attempt(0));
                let fast = probe.preview_attempt(&request().with_salt(s).with_attempt(HEDGE_LANE));
                slow.fault.is_none()
                    && fast.fault.is_none()
                    && slow.latency > Duration::from_secs(1)
                    && fast.latency < Duration::from_millis(5)
            })
            .expect("no salt makes lane 0 straggle while the hedge lane is fast");
        let req = request().with_salt(salt);
        let resilient = ResilientLlm::new(
            model(),
            ResiliencePolicy::default().hedged(HedgePolicy {
                quantile: 0.95,
                min_delay: Duration::from_millis(2),
            }),
            None,
            ResilienceCounters::detached(),
        );
        let started = Instant::now();
        let delivered = resilient.complete(&req);
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "hedge did not rescue the straggler ({:?})",
            started.elapsed()
        );
        assert!(resilient.take_failure().is_none());
        assert_eq!(resilient.counters.hedges.get(), 1);
        assert_eq!(resilient.counters.hedge_wins.get(), 1);
        // First-wins is byte-identical to the unhedged result.
        assert_eq!(
            delivered.text,
            SimLlm::new("gpt-4o-mini").complete(&req).text
        );
        // Exactly one delivery committed usage (the winner).
        assert_eq!(resilient.usage().calls, 1);
    }
}
