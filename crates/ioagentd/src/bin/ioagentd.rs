//! `ioagentd` — streaming front end to the concurrent diagnosis service.
//!
//! ```text
//! USAGE:
//!   ioagentd [OPTIONS]
//!   ioagentd trace-report PATH [--slowest N]
//!   ioagentd top ADDR [--interval-ms N] [--once]
//!   ioagentd slo-check ADDR [--slo FILE]
//!
//! OPTIONS:
//!   --workers N        worker threads (default: available parallelism)
//!   --intra-threads N  rayon-shim pool width inside each job (default: 1;
//!                      total thread budget = workers x intra-threads)
//!   --queue N          job queue bound (default: 2 x workers)
//!   --cache N          result cache entries, 0 disables (default: 256)
//!   --state-dir DIR    persist results + the knowledge-index snapshot in
//!                      DIR and serve them across restarts (default: off)
//!   --ivf-clusters N   cluster the knowledge index around N coarse
//!                      centroids and probe only the nearest few per
//!                      retrieval (default: 0 = exact flat scan)
//!   --nprobe N         clusters probed per retrieval (default: an eighth
//!                      of --ivf-clusters; N >= clusters = exact mode)
//!   --sq8              scan probed clusters over int8 (SQ8) codes and
//!                      rerank a small candidate pool in exact f32;
//!                      requires --ivf-clusters (default: off, full-f32
//!                      scans; returned scores are exact either way)
//!   --sq8-rerank-pool N  SQ8 candidates reranked in exact f32 per query
//!                      (default: 0 = the vecindex default pool)
//!   --listen ADDR      serve the line protocol over TCP instead of stdio
//!   --trace-dir DIR    write per-job span traces (NDJSON) into DIR
//!                      (default: off — tracing has near-zero cost when
//!                      disabled and never changes diagnosis output)
//!   --trace-detail D   span granularity: `stage` (default, a handful of
//!                      coarse stage spans per job) or `fine` (adds
//!                      per-fragment, per-LLM-call, and per-scan spans)
//!   --trace-sample S   tail-based sampling for fine spans: `tail:250ms`
//!                      keeps a job's fine detail only when the job ran
//!                      at least that long (or errored); `tail:p99` keeps
//!                      the slowest percentile. Implies fine detail;
//!                      requires --trace-dir. Coarse stage spans are
//!                      always emitted.
//!   --slo FILE         SLO declarations (`exec_p99 < 250ms over 60s`,
//!                      one per line) served by in-band {"slo": true}
//!                      probes and `ioagentd slo-check`
//!   --deadline-ms N    per-job deadline budget, measured from submit;
//!                      jobs that expire in the queue are shed, jobs that
//!                      expire mid-execution are cancelled (default: none;
//!                      a request's own `deadline_ms` field overrides)
//!   --max-retries N    LLM delivery attempts beyond the first before a
//!                      job fails with `retries_exhausted` (default: 2)
//!   --retry-backoff-ms N  decorrelated-backoff base between retries;
//!                      the cap is 25x the base (default: 2)
//!   --hedge-ms N       hedge a slow LLM attempt with a duplicate request
//!                      after max(N ms, observed p95 attempt latency);
//!                      first answer wins, the loser is cancelled
//!                      (default: off)
//!   --llm-faults SPEC  simulate heavy-tailed latency and injected faults
//!                      in the LLM layer; SPEC is comma-separated k=v,
//!                      e.g. `ttft=800us,tps=150000,tail_p=0.03,
//!                      timeout_p=0.005,timeout=50ms` (default: off)
//!   -h, --help         print this help
//! ```
//!
//! In stdio mode the daemon reads newline-delimited JSON requests on stdin
//! until EOF and writes one JSON response per line to stdout, in request
//! order. With `--listen host:port` it accepts any number of concurrent
//! TCP connections, each speaking the same protocol. Either way, all
//! connections share one knowledge index, one worker pool, and one result
//! cache; the bounded queue applies backpressure by pausing reads.
//!
//! Input hardening: request lines are capped at
//! [`protocol::MAX_REQUEST_LINE_BYTES`]; an oversized or malformed line is
//! answered with a structured `{"id": …, "error": …, "error_kind": …}`
//! line (echoing the request's own `id` whenever the JSON parsed far
//! enough to reveal one) and the stream keeps serving. A `{"stats": true}`
//! line returns the service's aggregate counters in-band; `{"metrics":
//! true}` returns the full observability registries with per-stage
//! latency histogram quantiles, lifetime and windowed (last 10s/60s),
//! plus jobs/s / errors/s / cache-hit rates; `{"slo": true}` evaluates
//! the `--slo` declarations against the current windows. Jobs may carry a
//! `trace_id`, echoed in the reply and stamped on the job's root span so
//! span files from several processes can be correlated.
//!
//! `ioagentd trace-report PATH` folds a span NDJSON file (or every
//! `spans-*.ndjson` in a `--trace-dir` directory — multi-process files
//! are id-remapped and grouped by trace) into a per-stage latency
//! attribution table; `--slowest N` appends the N slowest jobs with
//! their per-stage critical path. `ioagentd top` polls a daemon's
//! metrics probe and redraws a terminal dashboard. `ioagentd slo-check`
//! exits nonzero when a daemon violates its SLOs — the CI gate.

use ioagentd::{protocol, DiagnosisService, HedgePolicy, ResiliencePolicy, ServiceConfig};
use ioobserve::SloDecl;
use std::io::{BufRead, BufReader, Write};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "ioagentd — concurrent batch I/O-diagnosis service\n\n\
         USAGE: ioagentd [OPTIONS]\n\
         \x20      ioagentd trace-report PATH [--slowest N]\n\
         \x20      ioagentd top ADDR [--interval-ms N] [--once]\n\
         \x20      ioagentd slo-check ADDR [--slo FILE]\n\n\
         OPTIONS:\n\
           --workers N        worker threads (default: available parallelism)\n\
           --intra-threads N  rayon-shim pool width inside each job\n\
                              (default: 1; budget = workers x intra-threads)\n\
           --queue N          job queue bound (default: 2 x workers)\n\
           --cache N          result cache entries, 0 disables (default: 256)\n\
           --state-dir DIR    persist results + index snapshot in DIR\n\
           --ivf-clusters N   IVF-cluster the knowledge index (0 = flat)\n\
           --nprobe N         clusters probed per retrieval (0 = default)\n\
           --sq8              int8 scan + exact f32 rerank of probed\n\
                              clusters (requires --ivf-clusters)\n\
           --sq8-rerank-pool N  SQ8 rerank-pool size (0 = default)\n\
           --listen ADDR      serve over TCP (host:port) instead of stdio\n\
           --trace-dir DIR    write span traces (NDJSON) into DIR\n\
           --trace-detail D   span granularity: stage (default) | fine\n\
           --trace-sample S   tail sampling: tail:<dur>ms | tail:pN\n\
                              (keep fine spans of slow/errored jobs only)\n\
           --slo FILE         SLO declarations for {{\"slo\": true}} probes\n\
           --deadline-ms N    per-job deadline from submit; expired jobs\n\
                              are shed (queued) or cancelled (executing)\n\
           --max-retries N    LLM retries before retries_exhausted (def: 2)\n\
           --retry-backoff-ms N  retry backoff base, cap = 25x (def: 2)\n\
           --hedge-ms N       duplicate slow LLM attempts after\n\
                              max(N ms, p95 attempt latency); first wins\n\
           --llm-faults SPEC  inject heavy-tailed latency + faults into\n\
                              the LLM layer (k=v, comma-separated)\n\
           -h, --help         print this help\n\n\
         SUBCOMMANDS:\n\
           trace-report PATH  fold a span NDJSON file (or a --trace-dir\n\
                              directory of spans-*.ndjson files) into a\n\
                              per-stage latency table; --slowest N adds\n\
                              the N slowest jobs' critical paths\n\
           top ADDR           live dashboard over a daemon's metrics probe\n\
                              (--interval-ms 1000, --once for one frame)\n\
           slo-check ADDR     evaluate SLOs against a running daemon and\n\
                              exit 0 (pass) / 1 (violation) / 2 (error);\n\
                              --slo FILE checks client-side declarations,\n\
                              otherwise the daemon's own --slo file\n\n\
         PROTOCOL (one JSON document per line):\n\
           request:  {{\"id\": \"j1\", \"trace\": \"<darshan-parser text>\",\n\
                      \"model\": \"gpt-4o\", \"top_k\": 15, \"use_rag\": true,\n\
                      \"merge\": \"tree\", \"trace_id\": \"req-7\"}}\n\
           response: {{\"id\": \"j1\", \"issues\": [...], \"text\": \"...\",\n\
                      \"cached\": false, \"llm_calls\": 93, \"cost_usd\": 0.21,\n\
                      \"trace_id\": \"req-7\"}}"
    );
    std::process::exit(2);
}

fn parse_count(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match args.next().map(|v| v.parse::<usize>()) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("{flag} expects a non-negative integer");
            usage();
        }
    }
}

/// `ioagentd trace-report PATH [--slowest N]`: fold one span NDJSON file
/// — or every `spans-*.ndjson` in a trace directory — into a latency
/// table. Files are parsed separately and id-remapped before folding so
/// spans from different processes (which all number ids from 1) stay
/// disjoint; jobs are then grouped across processes by `trace_id`.
fn trace_report(path: &str, mut rest: impl Iterator<Item = String>) -> ! {
    let mut slowest = 0usize;
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--slowest" => slowest = parse_count(&mut rest, "--slowest"),
            other => {
                eprintln!("trace-report: unknown option {other:?}");
                usage();
            }
        }
    }
    let path = std::path::Path::new(path);
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    if path.is_dir() {
        let entries = std::fs::read_dir(path).unwrap_or_else(|e| {
            eprintln!("trace-report: cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("spans-") && name.ends_with(".ndjson") {
                files.push(entry.path());
            }
        }
        files.sort();
        if files.is_empty() {
            eprintln!(
                "trace-report: no spans-*.ndjson files in {}",
                path.display()
            );
            std::process::exit(1);
        }
    } else {
        files.push(path.to_path_buf());
    }

    let mut per_file = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("trace-report: cannot read {}: {e}", file.display());
            std::process::exit(1);
        });
        match ioobserve::parse_spans(&text) {
            Ok(spans) => per_file.push(spans),
            Err(e) => {
                eprintln!("trace-report: {}: {e}", file.display());
                std::process::exit(1);
            }
        }
    }
    let records = ioobserve::merge_process_spans(per_file);
    print!("{}", ioobserve::fold_spans(&records).render_table());
    if slowest > 0 {
        let all = ioobserve::slowest_jobs(&records, usize::MAX);
        let total = all.len() as u64;
        let mut digests = all;
        digests.truncate(slowest);
        print!("\n{}", ioobserve::render_slowest(&digests, total));
    }
    std::process::exit(0);
}

/// Send one probe line to a daemon and return the one-line JSON reply.
fn probe_daemon(addr: &str, request: &str) -> Result<serde_json::Value, String> {
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone connection: {e}"))?;
    writer
        .write_all(request.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send probe to {addr}: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("cannot read reply from {addr}: {e}"))?;
    if reply.trim().is_empty() {
        return Err(format!("empty reply from {addr}"));
    }
    serde_json::from_str(reply.trim()).map_err(|e| format!("malformed reply from {addr}: {e}"))
}

/// Fetch `{"metrics": true}` and rebuild the (service, process) registry
/// snapshots from the wire format.
fn fetch_snapshots(
    addr: &str,
) -> Result<(ioobserve::RegistrySnapshot, ioobserve::RegistrySnapshot), String> {
    let reply = probe_daemon(addr, r#"{"id": "probe", "metrics": true}"#)?;
    let metrics = reply
        .get("metrics")
        .ok_or_else(|| format!("reply from {addr} has no \"metrics\" section"))?;
    let service = metrics
        .get("service")
        .map(protocol::snapshot_from_metrics_json)
        .ok_or_else(|| format!("reply from {addr} has no \"metrics.service\" section"))?;
    let process = metrics
        .get("process")
        .map(protocol::snapshot_from_metrics_json)
        .ok_or_else(|| format!("reply from {addr} has no \"metrics.process\" section"))?;
    Ok((service, process))
}

/// `ioagentd top ADDR [--interval-ms N] [--once]`: poll the daemon's
/// metrics probe and redraw a terminal dashboard until interrupted.
fn top_cmd(addr: &str, mut rest: impl Iterator<Item = String>) -> ! {
    let mut interval_ms = 1000u64;
    let mut once = false;
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--interval-ms" => interval_ms = parse_count(&mut rest, "--interval-ms") as u64,
            "--once" => once = true,
            other => {
                eprintln!("top: unknown option {other:?}");
                usage();
            }
        }
    }
    loop {
        let (service, process) = fetch_snapshots(addr).unwrap_or_else(|e| {
            eprintln!("top: {e}");
            std::process::exit(2);
        });
        let frame = ioagentd::top::render_dashboard(&service, &process);
        if once {
            print!("{frame}");
            std::process::exit(0);
        }
        // Clear + home, then the frame: a flicker-free redraw loop.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

/// `ioagentd slo-check ADDR [--slo FILE]`: exit 0 when the daemon meets
/// its SLOs, 1 on violation, 2 on probe errors. With `--slo FILE` the
/// declarations are evaluated client-side against the metrics probe;
/// without it the daemon's own `--slo` file is checked via the in-band
/// `{"slo": true}` probe.
fn slo_check_cmd(addr: &str, mut rest: impl Iterator<Item = String>) -> ! {
    let mut slo_file: Option<String> = None;
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--slo" => slo_file = Some(rest.next().unwrap_or_else(|| usage())),
            other => {
                eprintln!("slo-check: unknown option {other:?}");
                usage();
            }
        }
    }
    let fail = |msg: String| -> ! {
        eprintln!("slo-check: {msg}");
        std::process::exit(2);
    };
    match slo_file {
        Some(file) => {
            let text = std::fs::read_to_string(&file)
                .unwrap_or_else(|e| fail(format!("cannot read {file}: {e}")));
            let decls =
                ioobserve::parse_slo_file(&text).unwrap_or_else(|e| fail(format!("{file}: {e}")));
            if decls.is_empty() {
                fail(format!("{file} declares no SLOs"));
            }
            let (service, process) = fetch_snapshots(addr).unwrap_or_else(|e| fail(e));
            let report = ioobserve::evaluate_slos(&decls, &[&service, &process]);
            print!("{}", report.render());
            std::process::exit(if report.pass() { 0 } else { 1 });
        }
        None => {
            let reply =
                probe_daemon(addr, r#"{"id": "probe", "slo": true}"#).unwrap_or_else(|e| fail(e));
            if let Some(err) = reply.get("error").and_then(serde_json::Value::as_str) {
                fail(format!("daemon rejected the probe: {err}"));
            }
            let slo = reply
                .get("slo")
                .and_then(serde_json::Value::as_object)
                .unwrap_or_else(|| fail(format!("reply from {addr} has no \"slo\" section")));
            let pass = slo.get("pass").and_then(serde_json::Value::as_bool) == Some(true);
            for check in slo
                .get("checks")
                .and_then(serde_json::Value::as_array)
                .map(Vec::as_slice)
                .unwrap_or_default()
            {
                let decl = check.get("decl").and_then(serde_json::Value::as_str);
                let ok = check.get("pass").and_then(serde_json::Value::as_bool) == Some(true);
                let note = check
                    .get("note")
                    .and_then(serde_json::Value::as_str)
                    .unwrap_or("");
                println!(
                    "{} {}{}",
                    if ok { "PASS" } else { "FAIL" },
                    decl.unwrap_or("?"),
                    if note.is_empty() {
                        String::new()
                    } else {
                        format!("  ({note})")
                    }
                );
            }
            std::process::exit(if pass { 0 } else { 1 });
        }
    }
}

fn main() {
    let mut config = ServiceConfig::default();
    let mut listen: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut trace_fine = false;
    let mut tail_rule: Option<ioobserve::TailRule> = None;
    let mut slo_decls: Vec<SloDecl> = Vec::new();
    let mut explicit_queue = false;
    let mut policy = ResiliencePolicy::default();
    let mut explicit_policy = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "trace-report" => trace_report(&args.next().unwrap_or_else(|| usage()), args),
            "top" => top_cmd(&args.next().unwrap_or_else(|| usage()), args),
            "slo-check" => slo_check_cmd(&args.next().unwrap_or_else(|| usage()), args),
            "--workers" => config.workers = parse_count(&mut args, "--workers").max(1),
            "--intra-threads" => {
                config.intra_threads = parse_count(&mut args, "--intra-threads").max(1)
            }
            "--queue" => {
                config.queue_capacity = parse_count(&mut args, "--queue").max(1);
                explicit_queue = true;
            }
            "--cache" => config.cache_capacity = parse_count(&mut args, "--cache"),
            "--state-dir" => config.state_dir = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--ivf-clusters" => config.ivf_clusters = parse_count(&mut args, "--ivf-clusters"),
            "--nprobe" => config.ivf_nprobe = parse_count(&mut args, "--nprobe"),
            "--sq8" => config.sq8 = true,
            "--sq8-rerank-pool" => {
                config.sq8_rerank_pool = parse_count(&mut args, "--sq8-rerank-pool")
            }
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-dir" => trace_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-detail" => match args.next().as_deref() {
                Some("stage") => trace_fine = false,
                Some("fine") => trace_fine = true,
                other => {
                    eprintln!("--trace-detail expects `stage` or `fine`, got {other:?}");
                    usage();
                }
            },
            "--trace-sample" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let Some(rule) = spec.strip_prefix("tail:") else {
                    eprintln!("--trace-sample expects `tail:<dur>ms` or `tail:pN`, got {spec:?}");
                    usage();
                };
                match ioobserve::TailRule::parse(rule) {
                    Ok(rule) => tail_rule = Some(rule),
                    Err(e) => {
                        eprintln!("--trace-sample: {e}");
                        usage();
                    }
                }
            }
            "--slo" => {
                let file = args.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
                    eprintln!("cannot read SLO file {file}: {e}");
                    std::process::exit(1);
                });
                slo_decls = ioobserve::parse_slo_file(&text).unwrap_or_else(|e| {
                    eprintln!("{file}: {e}");
                    std::process::exit(1);
                });
            }
            "--deadline-ms" => {
                let ms = parse_count(&mut args, "--deadline-ms").max(1) as u64;
                config = config.deadline(Duration::from_millis(ms));
            }
            "--max-retries" => {
                policy = policy.retries(parse_count(&mut args, "--max-retries") as u32);
                explicit_policy = true;
            }
            "--retry-backoff-ms" => {
                let base = parse_count(&mut args, "--retry-backoff-ms").max(1) as u64;
                policy = policy.backoff(
                    Duration::from_millis(base),
                    Duration::from_millis(base.saturating_mul(25)),
                );
                explicit_policy = true;
            }
            "--hedge-ms" => {
                let ms = parse_count(&mut args, "--hedge-ms").max(1) as u64;
                policy = policy.hedged(HedgePolicy {
                    min_delay: Duration::from_millis(ms),
                    ..HedgePolicy::default()
                });
                explicit_policy = true;
            }
            "--llm-faults" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match simllm::FaultPlan::parse(&spec) {
                    Ok(plan) => config = config.fault_plan(plan),
                    Err(e) => {
                        eprintln!("--llm-faults: {e}");
                        usage();
                    }
                }
            }
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown option {other:?}");
                usage();
            }
        }
    }
    // The *default* queue bound scales with the worker count chosen above;
    // an explicit --queue (however tight) is the operator's call.
    if !explicit_queue {
        config.queue_capacity = 2 * config.workers;
    }
    if explicit_policy {
        config = config.resilience(policy);
    }
    // A probe width without a cluster count would silently fall back to
    // the exact flat scan — surface the misconfiguration instead.
    if config.ivf_clusters == 0 && config.ivf_nprobe > 0 {
        eprintln!(
            "[ioagentd] warning: --nprobe {} has no effect without --ivf-clusters; \
             retrieval stays an exact flat scan",
            config.ivf_nprobe
        );
    }
    // SQ8 scans probed clusters, so it has nothing to do on a flat index;
    // refuse the combination rather than silently serving a different
    // engine than the operator configured.
    if config.sq8 && config.ivf_clusters == 0 {
        eprintln!("--sq8 requires --ivf-clusters");
        std::process::exit(1);
    }
    if !config.sq8 && config.sq8_rerank_pool > 0 {
        eprintln!(
            "[ioagentd] warning: --sq8-rerank-pool {} has no effect without --sq8",
            config.sq8_rerank_pool
        );
    }

    // The tracer is process-global and set-once, so it must be installed
    // before the service spawns its workers (each worker resolves the
    // tracer when it starts).
    if tail_rule.is_some() && trace_dir.is_none() {
        eprintln!("--trace-sample requires --trace-dir (there is nowhere to flush kept spans)");
        std::process::exit(1);
    }
    if let Some(dir) = &trace_dir {
        match ioobserve::Tracer::to_dir(dir) {
            Ok(tracer) => {
                let tracer = match tail_rule {
                    // Tail sampling implies fine detail: the whole point is
                    // keeping the fine spans of only the slow/errored jobs.
                    Some(rule) => tracer.with_tail_sampling(rule),
                    None if trace_fine => tracer.with_fine_detail(),
                    None => tracer,
                };
                let detail = if let Some(rule) = tracer.tail_sampling() {
                    format!("fine, tail-sampled {rule}")
                } else if tracer.fine_detail() {
                    "fine".to_string()
                } else {
                    "stage".to_string()
                };
                let path = tracer.trace_path().map(|p| p.display().to_string());
                if ioobserve::init_tracer(tracer) {
                    eprintln!(
                        "[ioagentd] tracing on ({detail} detail): {}",
                        path.as_deref().unwrap_or("<memory>")
                    );
                } else {
                    eprintln!("[ioagentd] warning: tracer already installed; --trace-dir ignored");
                }
            }
            Err(e) => {
                eprintln!("cannot open trace dir {dir}: {e}");
                std::process::exit(1);
            }
        }
    }

    eprintln!(
        "[ioagentd] starting: {} workers x {} intra-threads ({} thread budget), queue {}, cache {}",
        config.workers,
        config.intra_threads,
        config.thread_budget(),
        config.queue_capacity,
        config.cache_capacity
    );
    if let Some(d) = config.deadline {
        eprintln!("[ioagentd] deadline: {} ms per job", d.as_millis());
    }
    if let Some(p) = &config.resilience {
        eprintln!(
            "[ioagentd] resilience: max_retries {}, backoff {}..{} ms, hedging {}",
            p.max_retries
                .map_or_else(|| "unbounded".to_string(), |n| n.to_string()),
            p.backoff_base.as_millis(),
            p.backoff_cap.as_millis(),
            p.hedge.map_or_else(
                || "off".to_string(),
                |h| format!(
                    "after max({} ms, p{:.0})",
                    h.min_delay.as_millis(),
                    h.quantile * 100.0
                )
            ),
        );
    }
    if config.fault_plan.is_some() {
        eprintln!("[ioagentd] llm fault injection on");
    }
    let ivf = config.ivf_params();
    let sq8 = config.sq8_params();
    let service = Arc::new(DiagnosisService::start(config));
    if let Some(p) = ivf {
        eprintln!(
            "[ioagentd] IVF retrieval on: {} clusters, probing {}",
            p.clusters, p.nprobe
        );
    }
    if let Some(p) = sq8 {
        eprintln!(
            "[ioagentd] SQ8 scan tier on: int8 scan, exact rerank pool {}",
            p.rerank_pool
        );
    }
    match service.index_provenance() {
        Some(ioagentd::IndexProvenance::Snapshot) => {
            eprintln!("[ioagentd] knowledge index loaded from snapshot")
        }
        Some(ioagentd::IndexProvenance::Rebuilt(reason)) => {
            eprintln!("[ioagentd] knowledge index rebuilt ({reason})")
        }
        None => eprintln!("[ioagentd] knowledge index ready"),
    }
    if service.persistence_active() {
        let stats = service.stats();
        eprintln!(
            "[ioagentd] persistence on: {} journalled results ({} bytes)",
            stats.persisted_entries, stats.journal_bytes
        );
    }

    if !slo_decls.is_empty() {
        for d in &slo_decls {
            eprintln!("[ioagentd] SLO: {}", d.text);
        }
    }
    let slo_decls = Arc::new(slo_decls);

    match listen {
        None => {
            let stdin = std::io::stdin();
            serve_stream(&service, &slo_decls, stdin.lock(), std::io::stdout());
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
                eprintln!("cannot listen on {addr}: {e}");
                std::process::exit(1);
            });
            // Report the *bound* address, not the requested one: with
            // `--listen 127.0.0.1:0` the kernel picks the port, and test
            // harnesses scrape it from this line.
            match listener.local_addr() {
                Ok(bound) => eprintln!("[ioagentd] listening on {bound}"),
                Err(_) => eprintln!("[ioagentd] listening on {addr}"),
            }
            // Connection threads are detached: the accept loop runs for the
            // daemon's lifetime, so retaining JoinHandles would only grow
            // an unjoinable list. Each thread holds its own Arc on the
            // service and drains independently.
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let peer = stream
                    .peer_addr()
                    .map(|p| p.to_string())
                    .unwrap_or_default();
                eprintln!("[ioagentd] connection from {peer}");
                let service = Arc::clone(&service);
                let slo_decls = Arc::clone(&slo_decls);
                std::thread::spawn(move || {
                    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    serve_stream(&service, &slo_decls, reader, stream);
                });
            }
        }
    }

    let stats = match Arc::try_unwrap(service) {
        Ok(service) => {
            let stats = service.stats();
            service.shutdown();
            stats
        }
        Err(service) => service.stats(),
    };
    eprintln!(
        "[ioagentd] done: {} jobs ({} cache hits), {} LLM calls, {} input tokens, ${:.4}",
        stats.jobs_completed, stats.cache_hits, stats.llm_calls, stats.input_tokens, stats.cost_usd
    );
}

/// Pump one request stream: parse + submit each line (blocking on the
/// bounded queue for backpressure), while a writer thread emits responses
/// in request order as they complete.
fn serve_stream<R: BufRead, W: Write + Send + 'static>(
    service: &Arc<DiagnosisService>,
    slo_decls: &Arc<Vec<SloDecl>>,
    mut reader: R,
    mut writer: W,
) {
    enum Outcome {
        Ticket(ioagentd::JobTicket),
        // An error reply; counted into `service.errors` at print time so
        // the errors/s window matches what clients actually saw.
        Error(String),
        // Rendered by the printer thread, *after* every earlier ticket in
        // the stream has resolved, so a serial client sees counters that
        // include all of its own preceding jobs.
        Stats { id: String },
        Metrics { id: String },
        Slo { id: String },
    }

    // Bounded: if the peer stops reading responses, the printer thread
    // blocks on write, this channel fills, and `send` below blocks the
    // reader — backpressure holds even for cache hits, which bypass the
    // service's own bounded queue.
    let (tx, rx) = mpsc::sync_channel::<Outcome>(64);
    let printer_service = Arc::clone(service);
    let printer_decls = Arc::clone(slo_decls);
    let printer = std::thread::spawn(move || {
        let mut served = 0u64;
        for outcome in rx {
            let line = match outcome {
                Outcome::Ticket(ticket) => {
                    let result = ticket.wait();
                    if result.failure.is_some() {
                        // Failed jobs render as error replies; count them
                        // into the same errors/s window as parse errors.
                        printer_service.note_error();
                    }
                    protocol::render_result(&result)
                }
                Outcome::Error(line) => {
                    printer_service.note_error();
                    line
                }
                Outcome::Stats { id } => protocol::render_stats(
                    &id,
                    &printer_service.stats(),
                    printer_service.persistence_active(),
                    printer_service.queue_depth(),
                ),
                Outcome::Metrics { id } => protocol::render_metrics(
                    &id,
                    &printer_service.metrics_snapshot(),
                    &ioobserve::metrics().snapshot(),
                ),
                Outcome::Slo { id } => {
                    let report = ioobserve::evaluate_slos(
                        &printer_decls,
                        &[
                            &printer_service.metrics_snapshot(),
                            &ioobserve::metrics().snapshot(),
                        ],
                    );
                    protocol::render_slo(&id, &report)
                }
            };
            if writeln!(writer, "{line}").is_err() {
                break; // peer went away; drain remaining tickets silently
            }
            let _ = writer.flush();
            served += 1;
        }
        served
    });

    // Per-connection accounting: one root `conn` span covering the whole
    // stream, plus process-wide byte/request counters.
    let mut conn_span = ioobserve::tracer().span("conn");
    let mut conn_bytes = 0u64;
    let mut conn_requests = 0u64;

    let mut line_no = 0u64;
    loop {
        line_no += 1;
        let default_id = format!("line-{line_no}");
        let line = match protocol::read_bounded_line(&mut reader, protocol::MAX_REQUEST_LINE_BYTES)
        {
            Ok(protocol::InputLine::Line(line)) => line,
            Ok(protocol::InputLine::Oversized { bytes }) => {
                conn_bytes += bytes as u64;
                conn_requests += 1;
                // The oversized line was drained, so the stream is intact;
                // answer it with a structured error and keep serving.
                let message = format!(
                    "request line of {bytes} bytes exceeds the {} byte limit",
                    protocol::MAX_REQUEST_LINE_BYTES
                );
                if tx
                    .send(Outcome::Error(protocol::render_error(
                        &default_id,
                        protocol::ErrorKind::OversizedLine,
                        &message,
                    )))
                    .is_err()
                {
                    break;
                }
                continue;
            }
            Ok(protocol::InputLine::Eof) | Err(_) => break,
        };
        conn_bytes += line.len() as u64 + 1;
        if line.trim().is_empty() {
            line_no -= 1;
            continue;
        }
        conn_requests += 1;
        let outcome = match protocol::parse_line(&line, &default_id) {
            Ok(protocol::Request::Stats { id }) => Outcome::Stats { id },
            Ok(protocol::Request::Metrics { id }) => Outcome::Metrics { id },
            Ok(protocol::Request::Slo { id }) => Outcome::Slo { id },
            Ok(protocol::Request::Job(request)) => {
                let id = request.id.clone();
                match service.submit(*request) {
                    Ok(ticket) => Outcome::Ticket(ticket),
                    Err(e) => {
                        Outcome::Error(protocol::render_error(&id, (&e).into(), &e.to_string()))
                    }
                }
            }
            Err(e) => Outcome::Error(protocol::render_error(&e.id, e.kind, &e.message)),
        };
        if tx.send(outcome).is_err() {
            break;
        }
    }
    drop(tx);
    let _ = printer.join();

    let metrics = ioobserve::metrics();
    metrics.counter("conn.bytes").add(conn_bytes);
    metrics.counter("conn.requests").add(conn_requests);
    conn_span.set_attr("bytes", conn_bytes);
    conn_span.set_attr("requests", conn_requests);
    drop(conn_span);
    ioobserve::tracer().flush();
}
