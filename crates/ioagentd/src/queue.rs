//! Bounded MPMC job queue with blocking backpressure and graceful close.
//!
//! Producers block in [`BoundedQueue::push`] while the queue is full — that
//! is the service's backpressure mechanism: a front end reading requests
//! from a socket or stdin simply stops reading when the workers fall
//! behind. [`BoundedQueue::close`] drains gracefully: queued items are
//! still handed out, new pushes are refused, and poppers see `None` once
//! the backlog is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error returned by [`BoundedQueue::push`] on a closed queue; carries the
/// rejected item back to the caller.
#[derive(Debug)]
pub struct QueueClosed<T>(pub T);

/// Error returned by [`BoundedQueue::try_push`].
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is returned.
    Full(T),
    /// The queue is closed; the item is returned.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` in-flight items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy snapshot, for metrics).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueue, blocking while the queue is full. Fails only after
    /// [`BoundedQueue::close`].
    pub fn push(&self, item: T) -> Result<(), QueueClosed<T>> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(QueueClosed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Enqueue without blocking.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while empty. Returns `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Refuse new items; queued items remain poppable. Idempotent.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.push(3).is_err());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_push_reports_full() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(TryPushError::Full(2))));
        q.close();
        assert!(matches!(q.try_push(3), Err(TryPushError::Closed(3))));
    }

    #[test]
    fn full_queue_blocks_producer_until_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        // Give the producer time to hit the full queue, then make room.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocked_consumers_released_by_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(2));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        q.push(7).unwrap();
        q.close();
        let mut got: Vec<Option<u32>> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }
}
