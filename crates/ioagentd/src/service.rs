//! The diagnosis service: a fixed worker pool draining a bounded job queue
//! over one shared, build-once knowledge index.
//!
//! Concurrency model:
//!
//! - The `Arc<Retriever>` (vector index over the 66-document corpus) is
//!   built once at service start and shared read-only by every worker —
//!   the single most expensive piece of agent construction is amortised
//!   across all jobs.
//! - Each job gets its *own* backbone `SimLlm` and reflection model, so
//!   per-job usage accounting (calls, tokens, cost) never flows through
//!   shared state and results are bit-identical to running the job alone
//!   through [`IoAgent`].
//! - Completed diagnoses enter an LRU cache keyed by (trace fingerprint,
//!   model, config); resubmitting an identical job is answered from the
//!   cache with zero LLM calls.
//! - Each worker additionally owns a rayon-shim pool of
//!   [`ServiceConfig::intra_threads`] threads for the hot loops *inside* a
//!   job, so the daemon's thread budget is `workers × intra_threads` (see
//!   the [`ServiceConfig`] docs for how to split it).

use crate::cache::LruCache;
use crate::queue::{BoundedQueue, QueueClosed, TryPushError};
use crate::resilience::{JobFailure, ResilienceCounters, ResiliencePolicy, ResilientLlm};
use darshan::DarshanTrace;
use ioagent_core::{AgentConfig, IoAgent};
use ioobserve::{
    Counter, FloatCounter, Gauge, Histogram, MetricsRegistry, MonotonicClock, RegistrySnapshot,
    WindowSpec,
};
use iostore::{ResultKey, ResultStore, StateDir};
use simllm::{Diagnosis, FaultPlan, SimLlm};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use ioagent_core::rag::{IndexProvenance, IvfParams, Retriever, Sq8Params};

/// Service sizing knobs.
///
/// The daemon spends threads at two grains: `workers` jobs run
/// concurrently, and each job may additionally split its own hot loops
/// (per-fragment diagnosis, retrieval reflection, merge levels) across
/// `intra_threads` rayon-shim threads. The total thread budget is therefore
/// `workers × intra_threads`; size the product to the machine, not either
/// factor alone. Many small jobs favour wide `workers` × `intra_threads` 1
/// (the default); few large traces favour the opposite split.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (diagnoses running concurrently).
    pub workers: usize,
    /// Rayon-shim pool width *inside* each job (1 = sequential hot loops,
    /// the pre-shim behaviour). Diagnoses are bit-identical at any width.
    pub intra_threads: usize,
    /// Job queue bound; producers block (backpressure) when it is full.
    pub queue_capacity: usize,
    /// Result cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Simulated remote-LLM round-trip budget charged per fresh job (zero
    /// by default). A deployed service fronts network-hosted models whose
    /// latency — not local compute — dominates job time; workers sleep
    /// this long per cache-missing job so benchmarks can reproduce the
    /// latency-bound regime on any machine. Never applied to cache hits
    /// and never affects diagnosis content.
    pub simulated_rpc_latency: Duration,
    /// Persistent state directory (`None` — the default — keeps the
    /// pre-existing in-memory-only behaviour). When set, completed
    /// diagnoses are journalled to disk and served across restarts, and
    /// the knowledge index is snapshot-loaded instead of rebuilt when the
    /// snapshot matches the live corpus and embedder configuration.
    /// Results are byte-identical either way.
    pub state_dir: Option<PathBuf>,
    /// IVF coarse-cluster count for the knowledge index (0 — the default
    /// — keeps the exact flat scan). With clustering on, each retrieval
    /// probes only the [`ServiceConfig::ivf_nprobe`] most query-similar
    /// clusters: sub-linear scan cost, ≥ 0.95 recall@15 at the default
    /// probe width (gated in CI by the batch benchmark).
    pub ivf_clusters: usize,
    /// Clusters probed per retrieval; 0 picks the default (an eighth of
    /// the clusters, at least one). `>= ivf_clusters` is exact mode —
    /// byte-identical to the flat scan.
    pub ivf_nprobe: usize,
    /// Scan probed clusters over int8 (SQ8) codes, then rerank a
    /// candidate pool with exact f32 cosine (`false` — the default —
    /// scans full f32). Requires `ivf_clusters > 0`: the service panics
    /// at start on `sq8` without clustering rather than silently serving
    /// a different engine than configured (the daemon's CLI rejects the
    /// combination up front). Returned scores are always exact.
    pub sq8: bool,
    /// SQ8 candidate-pool size reranked in exact f32 per query; 0 picks
    /// the default (`vecindex::DEFAULT_SQ8_RERANK_POOL`). A pool
    /// covering every probed row is byte-identical to the f32 probe path.
    pub sq8_rerank_pool: usize,
    /// Default per-job deadline, measured from enqueue (`None` — the
    /// default — is no deadline). A job whose deadline expires in the
    /// queue is shed at dequeue; mid-execution expiry cancels in-flight
    /// LLM attempts. Per-request `deadline_ms` overrides this.
    pub deadline: Option<Duration>,
    /// Failure model installed on every job's backbone LLM (`None` — the
    /// default — keeps the fault-free simulator). Content is unaffected:
    /// the plan only injects latency and delivery faults.
    pub fault_plan: Option<FaultPlan>,
    /// Retry/backoff/hedge policy for LLM calls inside each job. `None`
    /// with no deadline means the pre-existing infinite-patience
    /// behaviour; `None` with a deadline applies
    /// [`ResiliencePolicy::unbounded`] so the deadline alone bounds jobs.
    pub resilience: Option<ResiliencePolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            workers,
            intra_threads: 1,
            queue_capacity: 2 * workers,
            cache_capacity: 256,
            simulated_rpc_latency: Duration::ZERO,
            state_dir: None,
            ivf_clusters: 0,
            ivf_nprobe: 0,
            sq8: false,
            sq8_rerank_pool: 0,
            deadline: None,
            fault_plan: None,
            resilience: None,
        }
    }
}

impl ServiceConfig {
    /// Config with an explicit worker count and proportional queue bound.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        ServiceConfig {
            workers,
            queue_capacity: 2 * workers,
            ..ServiceConfig::default()
        }
    }

    /// Builder-style cache capacity override.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Builder-style queue bound override.
    pub fn queue_capacity(mut self, jobs: usize) -> Self {
        self.queue_capacity = jobs.max(1);
        self
    }

    /// Builder-style simulated per-job RPC latency override.
    pub fn rpc_latency(mut self, latency: Duration) -> Self {
        self.simulated_rpc_latency = latency;
        self
    }

    /// Builder-style intra-job pool width override (clamped to ≥ 1).
    pub fn intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads.max(1);
        self
    }

    /// Builder-style persistent state directory override.
    pub fn state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Builder-style IVF override: cluster the knowledge index and probe
    /// `nprobe` clusters per retrieval (0 → the default probe width).
    pub fn ivf(mut self, clusters: usize, nprobe: usize) -> Self {
        self.ivf_clusters = clusters;
        self.ivf_nprobe = nprobe;
        self
    }

    /// Builder-style SQ8 scan-tier override: scan probed clusters over
    /// int8 codes and rerank a `rerank_pool`-sized candidate pool in
    /// exact f32 (0 → the default pool). Requires [`ServiceConfig::ivf`].
    pub fn sq8(mut self, rerank_pool: usize) -> Self {
        self.sq8 = true;
        self.sq8_rerank_pool = rerank_pool;
        self
    }

    /// Builder-style default per-job deadline override.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style failure-model override for every job's backbone LLM.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style retry/backoff/hedge policy override.
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = Some(policy);
        self
    }

    /// The IVF parameters this configuration asks for (`None` = flat).
    /// `ivf_nprobe` is meaningful only with `ivf_clusters > 0`; on its
    /// own it is ignored (the daemon's CLI warns about that combination).
    pub fn ivf_params(&self) -> Option<IvfParams> {
        if self.ivf_clusters == 0 {
            return None;
        }
        Some(if self.ivf_nprobe == 0 {
            IvfParams::with_default_nprobe(self.ivf_clusters)
        } else {
            IvfParams {
                clusters: self.ivf_clusters,
                nprobe: self.ivf_nprobe,
            }
        })
    }

    /// The SQ8 parameters this configuration asks for (`None` = full-f32
    /// scans). Meaningful only together with [`ServiceConfig::ivf_params`]
    /// being `Some` — the retriever build panics otherwise.
    pub fn sq8_params(&self) -> Option<Sq8Params> {
        self.sq8.then(|| {
            if self.sq8_rerank_pool == 0 {
                Sq8Params::default()
            } else {
                Sq8Params {
                    rerank_pool: self.sq8_rerank_pool,
                }
            }
        })
    }

    /// Total thread budget this configuration can have live at once.
    pub fn thread_budget(&self) -> usize {
        self.workers * self.intra_threads
    }
}

/// One diagnosis job.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Caller-chosen identifier, echoed in the result.
    pub id: String,
    /// The parsed trace to diagnose.
    pub trace: DarshanTrace,
    /// Backbone model profile name (must exist in [`simllm::PROFILES`]).
    pub model: String,
    /// Agent configuration.
    pub config: AgentConfig,
    /// Caller-supplied trace context (`None` → the service generates
    /// one at submit time). Flows into the job's root span as the
    /// `trace_id` attribute and is echoed in the [`JobResult`], so span
    /// files from several processes (client + daemon) can be correlated.
    /// Deliberately **not** part of the cache fingerprint: two identical
    /// jobs under different trace ids share one cached diagnosis.
    pub trace_id: Option<String>,
    /// Per-job deadline override, measured from enqueue (`None` inherits
    /// [`ServiceConfig::deadline`]). Like `trace_id`, deliberately not
    /// part of the cache fingerprint: the deadline changes whether a
    /// diagnosis is delivered in time, never what it says.
    pub deadline: Option<Duration>,
}

impl JobRequest {
    /// Job with the default (paper) agent configuration.
    pub fn new(id: impl Into<String>, trace: DarshanTrace, model: impl Into<String>) -> Self {
        JobRequest {
            id: id.into(),
            trace,
            model: model.into(),
            config: AgentConfig::default(),
            trace_id: None,
            deadline: None,
        }
    }

    /// Builder-style per-job deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Parse `darshan-parser` text into a job.
    pub fn from_trace_text(
        id: impl Into<String>,
        text: &str,
        model: impl Into<String>,
    ) -> Result<Self, String> {
        let trace = darshan::parse::parse_text(text).map_err(|e| e.to_string())?;
        Ok(JobRequest::new(id, trace, model))
    }

    /// Cache key: canonical trace bytes × model × full config. The trace
    /// hash reuses the simulator's stable FNV-1a (`simllm::rng::stable_hash`)
    /// rather than keeping a private copy of the same algorithm. The key
    /// type is `iostore`'s [`ResultKey`], so the in-memory LRU and the
    /// on-disk journal index results identically.
    fn fingerprint(&self) -> ResultKey {
        let canonical = darshan::write::write_text(&self.trace);
        ResultKey {
            trace_hash: simllm::rng::stable_hash(&canonical),
            model: self.model.clone(),
            config: format!("{:?}", self.config),
        }
    }
}

/// Per-job token/cost accounting (backbone + reflection models combined).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobMetrics {
    /// LLM completions issued for this job (0 on a cache hit).
    pub llm_calls: usize,
    /// Input tokens consumed.
    pub input_tokens: usize,
    /// Output tokens produced.
    pub output_tokens: usize,
    /// Simulated spend in USD.
    pub cost_usd: f64,
    /// Time spent waiting in the queue.
    pub queue_wait: Duration,
    /// Time spent executing (or answering from cache).
    pub exec: Duration,
}

/// A completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The request's identifier.
    pub id: String,
    /// The diagnosis (bit-identical to a sequential [`IoAgent`] run).
    pub diagnosis: Diagnosis,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Worker index that served the job (`usize::MAX` for submit-time
    /// cache hits, which never reach a worker).
    pub worker: usize,
    /// Token/cost/latency accounting.
    pub metrics: JobMetrics,
    /// The job's trace context: the request's own `trace_id` when one
    /// was supplied, otherwise the service-generated id. Matches the
    /// `trace_id` attribute on the job's root span.
    pub trace_id: String,
    /// Why the job produced no diagnosis (`None` on success). Failed
    /// jobs carry an empty [`Diagnosis`], are never cached, and render
    /// as protocol error replies with the matching `error_kind`.
    pub failure: Option<JobFailure>,
}

/// Per-process seed for generated trace ids, so ids from concurrent
/// daemons (multi-process trace merging is the point) cannot collide.
static TRACE_ID_SEED: OnceLock<u64> = OnceLock::new();
static TRACE_ID_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_trace_id() -> String {
    let seed = *TRACE_ID_SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        simllm::rng::stable_hash(&format!("{}:{nanos}", std::process::id()))
    });
    let seq = TRACE_ID_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{seed:016x}-{seq:08x}")
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The model name matches no known profile.
    UnknownModel(String),
    /// The bounded queue is full ([`DiagnosisService::try_submit`] only;
    /// blocking [`DiagnosisService::submit`] waits instead).
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownModel(m) => write!(f, "unknown model profile {m:?}"),
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Aggregate service counters (monotonic over the service lifetime,
/// except the two persistence gauges, which snapshot the journal's state
/// at [`DiagnosisService::stats`] time and stay 0 with persistence off).
///
/// Since the observability refactor this struct is a *snapshot view*:
/// the live values are lock-free atomics in the service's private
/// [`MetricsRegistry`] (see the private `ServiceCounters`), read into this struct
/// by [`DiagnosisService::stats`]. The fields — and therefore
/// `render_stats` output — are unchanged from the `Mutex<ServiceStats>`
/// era.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Jobs completed (including cache hits).
    pub jobs_completed: u64,
    /// Jobs answered from the result cache (in-memory LRU or journal).
    pub cache_hits: u64,
    /// Jobs that missed every cache layer and ran a fresh diagnosis.
    pub cache_misses: u64,
    /// Total LLM completions across all jobs.
    pub llm_calls: u64,
    /// Total input tokens across all jobs.
    pub input_tokens: u64,
    /// Total output tokens across all jobs.
    pub output_tokens: u64,
    /// Total simulated spend.
    pub cost_usd: f64,
    /// Distinct results in the on-disk journal (0 with persistence off).
    pub persisted_entries: u64,
    /// Journal file size in bytes (0 with persistence off).
    pub journal_bytes: u64,
    /// Jobs that failed (deadline, fault, retries exhausted). Disjoint
    /// from `jobs_completed`.
    pub jobs_failed: u64,
    /// Jobs shed at dequeue because their deadline expired in the queue.
    pub shed_total: u64,
    /// Jobs failed on a deadline (shed in queue or expired mid-exec).
    pub deadline_exceeded: u64,
    /// Retry rounds entered across all jobs.
    pub retries: u64,
    /// Hedged duplicate requests launched.
    pub hedges: u64,
    /// Races the hedged duplicate won.
    pub hedge_wins: u64,
    /// Injected timeout faults observed.
    pub faults_timeout: u64,
    /// Injected rate-limit faults observed.
    pub faults_rate_limited: u64,
    /// Injected truncation faults observed.
    pub faults_truncated: u64,
}

struct QueuedJob {
    request: JobRequest,
    key: ResultKey,
    /// Resolved trace context (caller-supplied or generated at submit).
    trace_id: String,
    enqueued: Instant,
    /// Enqueue time on the tracer's clock (0 with tracing off), so the
    /// worker can emit the `job` root span and its `stage.queue_wait`
    /// child with the true enqueue instant as their start.
    enqueued_ns: u64,
    /// Absolute deadline (request override or config default, anchored
    /// at submit). Expired-in-queue jobs are shed at dequeue.
    deadline_at: Option<Instant>,
    reply: mpsc::Sender<JobResult>,
}

/// The service's live counters: lock-free atomics in a private
/// [`MetricsRegistry`] (private so several services in one process — the
/// unit tests — never share counters). Instruments are resolved once at
/// construction and then touched without any name lookup or lock on the
/// per-job path; [`DiagnosisService::stats`] reads them into the
/// [`ServiceStats`] snapshot view.
struct ServiceCounters {
    registry: MetricsRegistry,
    jobs_completed: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    errors: Arc<Counter>,
    llm_calls: Arc<Counter>,
    input_tokens: Arc<Counter>,
    output_tokens: Arc<Counter>,
    cost_usd: Arc<FloatCounter>,
    queue_wait_ns: Arc<Histogram>,
    exec_ns: Arc<Histogram>,
    persist_ns: Arc<Histogram>,
    workers: Arc<Gauge>,
    workers_busy: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    jobs_failed: Arc<Counter>,
    shed_total: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    /// Retry/hedge/fault instruments, grouped for handing to each job's
    /// [`ResilientLlm`] (clones share the same atomics).
    resilience: ResilienceCounters,
}

impl ServiceCounters {
    fn new() -> Self {
        // Windowed with the standard spec so the same instruments answer
        // lifetime *and* last-10s/last-60s reads ({"metrics": true},
        // `top`, the SLO gate) without a second recording path.
        let registry =
            MetricsRegistry::windowed(WindowSpec::standard(Arc::new(MonotonicClock::new())));
        ServiceCounters {
            jobs_completed: registry.counter("service.jobs_completed"),
            cache_hits: registry.counter("service.cache_hits"),
            cache_misses: registry.counter("service.cache_misses"),
            errors: registry.counter("service.errors"),
            llm_calls: registry.counter("service.llm_calls"),
            input_tokens: registry.counter("service.input_tokens"),
            output_tokens: registry.counter("service.output_tokens"),
            cost_usd: registry.float_counter("service.cost_usd"),
            queue_wait_ns: registry.histogram("service.queue_wait_ns"),
            exec_ns: registry.histogram("service.exec_ns"),
            persist_ns: registry.histogram("service.persist_ns"),
            workers: registry.gauge("service.workers"),
            workers_busy: registry.gauge("service.workers_busy"),
            queue_depth: registry.gauge("service.queue_depth"),
            jobs_failed: registry.counter("service.jobs_failed"),
            shed_total: registry.counter("service.shed_total"),
            deadline_exceeded: registry.counter("service.deadline_exceeded"),
            resilience: ResilienceCounters {
                retries: registry.counter("service.retries"),
                hedges: registry.counter("service.hedges"),
                hedge_wins: registry.counter("service.hedge_wins"),
                fault_timeout: registry.counter("service.faults.timeout"),
                fault_rate_limited: registry.counter("service.faults.rate_limited"),
                fault_truncated: registry.counter("service.faults.truncated"),
                attempt_ns: registry.histogram("service.llm_attempt_ns"),
            },
            registry,
        }
    }
}

struct Shared {
    queue: BoundedQueue<QueuedJob>,
    cache: Mutex<LruCache<ResultKey, Diagnosis>>,
    counters: ServiceCounters,
    retriever: Arc<Retriever>,
    /// Disk-backed result journal (`None` with persistence off).
    store: Option<Mutex<ResultStore>>,
    rpc_latency: Duration,
    intra_threads: usize,
    /// Default per-job deadline (request `deadline` overrides).
    deadline: Option<Duration>,
    /// Failure model for every job's backbone LLM.
    fault_plan: Option<FaultPlan>,
    /// Retry/backoff/hedge policy (see [`ServiceConfig::resilience`]).
    resilience: Option<ResiliencePolicy>,
}

impl Shared {
    fn record(&self, result: &JobResult) {
        let c = &self.counters;
        if let Some(failure) = &result.failure {
            // Failed jobs count separately: they never enter
            // `jobs_completed`, the cache-hit/miss split, or the latency
            // histograms (the SLO quantiles describe delivered work).
            // Spend that happened before the failure still counts.
            c.jobs_failed.inc();
            match failure {
                JobFailure::DeadlineExceededQueued => {
                    c.shed_total.inc();
                    c.deadline_exceeded.inc();
                }
                JobFailure::DeadlineExceeded => c.deadline_exceeded.inc(),
                JobFailure::RetriesExhausted { .. } | JobFailure::Fault(_) => {}
            }
            c.llm_calls.add(result.metrics.llm_calls as u64);
            c.input_tokens.add(result.metrics.input_tokens as u64);
            c.output_tokens.add(result.metrics.output_tokens as u64);
            c.cost_usd.add(result.metrics.cost_usd);
            return;
        }
        c.jobs_completed.inc();
        if result.cached {
            c.cache_hits.inc();
        } else {
            c.cache_misses.inc();
        }
        c.llm_calls.add(result.metrics.llm_calls as u64);
        c.input_tokens.add(result.metrics.input_tokens as u64);
        c.output_tokens.add(result.metrics.output_tokens as u64);
        c.cost_usd.add(result.metrics.cost_usd);
        c.queue_wait_ns.record_duration(result.metrics.queue_wait);
        c.exec_ns.record_duration(result.metrics.exec);
    }

    /// LRU lookup with journal read-through: a miss in the in-memory layer
    /// falls back to the persistent store, promoting any hit into the LRU
    /// so subsequent lookups stay memory-speed.
    fn lookup(&self, key: &ResultKey) -> Option<Diagnosis> {
        let mut probe_span = ioobserve::tracer().span("stage.cache_probe");
        let hit = self.lookup_inner(key);
        probe_span.set_attr("hit", hit.is_some());
        hit
    }

    fn lookup_inner(&self, key: &ResultKey) -> Option<Diagnosis> {
        let mut cache = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(diagnosis) = cache.get(key) {
            return Some(diagnosis);
        }
        let store = self.store.as_ref()?;
        let persisted = store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .cloned()?;
        cache.insert(key.clone(), persisted.clone());
        Some(persisted)
    }

    /// Record a fresh diagnosis in the LRU and (when persistence is on)
    /// the journal. Journal write failures are reported, not fatal — the
    /// daemon keeps serving from memory.
    fn remember(&self, key: &ResultKey, diagnosis: &Diagnosis) {
        let persist_start = Instant::now();
        let _span = ioobserve::tracer().span("stage.persist");
        {
            let mut cache = self
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cache.insert(key.clone(), diagnosis.clone());
        }
        if let Some(store) = &self.store {
            let mut store = store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Err(e) = store.insert(key.clone(), diagnosis.clone()) {
                eprintln!("[ioagentd] journal append failed: {e}");
            }
        }
        self.counters
            .persist_ns
            .record_duration(persist_start.elapsed());
    }
}

/// Pending result for one submitted job.
#[derive(Debug)]
pub struct JobTicket {
    id: String,
    receiver: mpsc::Receiver<JobResult>,
}

impl JobTicket {
    /// The submitted job's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Block until the job completes. Panics only if the service was torn
    /// down without running the job (dropped mid-shutdown), which the
    /// service's graceful drain prevents.
    pub fn wait(self) -> JobResult {
        self.receiver.recv().expect("job dropped before completion")
    }
}

/// The long-lived diagnosis service.
pub struct DiagnosisService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    index_provenance: Option<IndexProvenance>,
}

impl DiagnosisService {
    /// Start a service, building the knowledge index once. With
    /// [`ServiceConfig::state_dir`] set, the index is snapshot-loaded when
    /// possible and the result journal is replayed, so previously-seen
    /// jobs are answered across restarts with zero LLM calls. A state
    /// directory that cannot be opened degrades to in-memory-only
    /// operation (reported on stderr and via
    /// [`DiagnosisService::persistence_active`]) rather than refusing to
    /// start.
    pub fn start(config: ServiceConfig) -> Self {
        let ivf = config.ivf_params();
        let sq8 = config.sq8_params();
        let Some(dir) = config.state_dir.clone() else {
            return Self::with_shared_index(config, Arc::new(Retriever::build_tuned(ivf, sq8)));
        };
        match Self::open_state(&dir, ivf, sq8) {
            Ok((retriever, provenance, store)) => {
                let mut service = Self::build(config, Arc::new(retriever), Some(store));
                service.index_provenance = Some(provenance);
                service
            }
            Err(e) => {
                eprintln!(
                    "[ioagentd] state dir {dir:?} unusable ({e}); running without persistence"
                );
                Self::with_shared_index(config, Arc::new(Retriever::build_tuned(ivf, sq8)))
            }
        }
    }

    fn open_state(
        dir: &std::path::Path,
        ivf: Option<IvfParams>,
        sq8: Option<Sq8Params>,
    ) -> std::io::Result<(Retriever, IndexProvenance, ResultStore)> {
        let state = StateDir::new(dir)?;
        // Open the (cheap, fallible) journal before building the index, so
        // an unusable journal cannot waste a corpus build that the fallback
        // path would immediately redo.
        let store = state.open_results()?;
        let (retriever, provenance) = Retriever::build_or_load_tuned(&state, ivf, sq8);
        Ok((retriever, provenance, store))
    }

    /// Start a service over an existing index (lets several services — or
    /// benchmarks comparing worker counts — share one build). Ignores
    /// [`ServiceConfig::state_dir`]'s index snapshot (the index is given),
    /// but still opens the result journal when the field is set.
    pub fn with_shared_index(config: ServiceConfig, retriever: Arc<Retriever>) -> Self {
        let store = config.state_dir.as_ref().and_then(|dir| {
            StateDir::new(dir)
                .and_then(|s| s.open_results())
                .map_err(|e| {
                    eprintln!(
                        "[ioagentd] state dir {dir:?} unusable ({e}); running without persistence"
                    )
                })
                .ok()
        });
        Self::build(config, retriever, store)
    }

    fn build(config: ServiceConfig, retriever: Arc<Retriever>, store: Option<ResultStore>) -> Self {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            counters: ServiceCounters::new(),
            retriever,
            store: store.map(Mutex::new),
            rpc_latency: config.simulated_rpc_latency,
            intra_threads: config.intra_threads.max(1),
            deadline: config.deadline,
            fault_plan: config.fault_plan.clone(),
            resilience: config.resilience,
        });
        shared.counters.workers.set(config.workers.max(1) as u64);
        let workers = (0..config.workers.max(1))
            .map(|worker_idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ioagentd-worker-{worker_idx}"))
                    .spawn(move || worker_loop(&shared, worker_idx))
                    .expect("spawn worker thread")
            })
            .collect();
        DiagnosisService {
            shared,
            workers,
            index_provenance: None,
        }
    }

    /// Whether a disk-backed result journal is attached.
    pub fn persistence_active(&self) -> bool {
        self.shared.store.is_some()
    }

    /// How the knowledge index was obtained (`None` when the index was
    /// supplied by the caller or persistence is off).
    pub fn index_provenance(&self) -> Option<&IndexProvenance> {
        self.index_provenance.as_ref()
    }

    /// Both model names a job would instantiate inside a worker. Checked
    /// at submit time: an unknown profile would otherwise panic the worker
    /// thread (`profile_or_panic`) and wedge every waiter behind it.
    fn validate_models(request: &JobRequest) -> Result<(), SubmitError> {
        if simllm::profile(&request.model).is_none() {
            return Err(SubmitError::UnknownModel(request.model.clone()));
        }
        if simllm::profile(&request.config.reflection_model).is_none() {
            return Err(SubmitError::UnknownModel(
                request.config.reflection_model.clone(),
            ));
        }
        Ok(())
    }

    /// Submit one job. Blocks while the queue is full (backpressure).
    /// Identical completed jobs are answered from the cache immediately.
    pub fn submit(&self, request: JobRequest) -> Result<JobTicket, SubmitError> {
        Self::validate_models(&request)?;
        let key = request.fingerprint();
        let trace_id = request.trace_id.clone().unwrap_or_else(fresh_trace_id);
        let (reply, receiver) = mpsc::channel();
        let ticket = JobTicket {
            id: request.id.clone(),
            receiver,
        };

        // Fast path: answer from the cache (LRU, then journal
        // read-through) without touching the queue. Cache hits are free,
        // so they are served even under an already-tight deadline.
        if let Some(diagnosis) = self.shared.lookup(&key) {
            let result = JobResult {
                id: request.id,
                diagnosis,
                cached: true,
                worker: usize::MAX,
                metrics: JobMetrics::default(),
                trace_id,
                failure: None,
            };
            self.shared.record(&result);
            let _ = reply.send(result);
            return Ok(ticket);
        }

        let deadline_at = self.deadline_at(&request);
        let job = QueuedJob {
            request,
            key,
            trace_id,
            enqueued: Instant::now(),
            enqueued_ns: ioobserve::tracer().now_ns(),
            deadline_at,
            reply,
        };
        match self.shared.queue.push(job) {
            Ok(()) => Ok(ticket),
            Err(QueueClosed(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Resolve the job's absolute deadline at submit time: the request
    /// override, else the service default, anchored to now (enqueue).
    fn deadline_at(&self, request: &JobRequest) -> Option<Instant> {
        request
            .deadline
            .or(self.shared.deadline)
            .map(|d| Instant::now() + d)
    }

    /// [`DiagnosisService::submit`] without backpressure blocking: a full
    /// queue returns [`SubmitError::QueueFull`] immediately instead of
    /// waiting for a worker. Cache hits are still answered inline (they
    /// never need queue space).
    pub fn try_submit(&self, request: JobRequest) -> Result<JobTicket, SubmitError> {
        Self::validate_models(&request)?;
        let key = request.fingerprint();
        let trace_id = request.trace_id.clone().unwrap_or_else(fresh_trace_id);
        let (reply, receiver) = mpsc::channel();
        let ticket = JobTicket {
            id: request.id.clone(),
            receiver,
        };
        if let Some(diagnosis) = self.shared.lookup(&key) {
            let result = JobResult {
                id: request.id,
                diagnosis,
                cached: true,
                worker: usize::MAX,
                metrics: JobMetrics::default(),
                trace_id,
                failure: None,
            };
            self.shared.record(&result);
            let _ = reply.send(result);
            return Ok(ticket);
        }
        let deadline_at = self.deadline_at(&request);
        let job = QueuedJob {
            request,
            key,
            trace_id,
            enqueued: Instant::now(),
            enqueued_ns: ioobserve::tracer().now_ns(),
            deadline_at,
            reply,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => Ok(ticket),
            Err(TryPushError::Full(_)) => Err(SubmitError::QueueFull),
            Err(TryPushError::Closed(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submit many jobs, returning one ticket per job in input order.
    /// Model names are validated up front so a bad batch fails atomically
    /// before any work is enqueued.
    pub fn submit_batch(&self, requests: Vec<JobRequest>) -> Result<Vec<JobTicket>, SubmitError> {
        for request in &requests {
            Self::validate_models(request)?;
        }
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Wait for a batch of tickets, preserving order.
    pub fn drain(tickets: Vec<JobTicket>) -> Vec<JobResult> {
        tickets.into_iter().map(JobTicket::wait).collect()
    }

    /// Convenience: submit a batch and wait for all results in order.
    pub fn run_batch(&self, requests: Vec<JobRequest>) -> Result<Vec<JobResult>, SubmitError> {
        Ok(Self::drain(self.submit_batch(requests)?))
    }

    /// Snapshot of the aggregate counters, with the persistence gauges
    /// (journal entry count and file size) read live from the store.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        let mut stats = ServiceStats {
            jobs_completed: c.jobs_completed.get(),
            cache_hits: c.cache_hits.get(),
            cache_misses: c.cache_misses.get(),
            llm_calls: c.llm_calls.get(),
            input_tokens: c.input_tokens.get(),
            output_tokens: c.output_tokens.get(),
            cost_usd: c.cost_usd.get(),
            persisted_entries: 0,
            journal_bytes: 0,
            jobs_failed: c.jobs_failed.get(),
            shed_total: c.shed_total.get(),
            deadline_exceeded: c.deadline_exceeded.get(),
            retries: c.resilience.retries.get(),
            hedges: c.resilience.hedges.get(),
            hedge_wins: c.resilience.hedge_wins.get(),
            faults_timeout: c.resilience.fault_timeout.get(),
            faults_rate_limited: c.resilience.fault_rate_limited.get(),
            faults_truncated: c.resilience.fault_truncated.get(),
        };
        if let Some(store) = &self.shared.store {
            let store = store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            stats.persisted_entries = store.len() as u64;
            stats.journal_bytes = store.journal_bytes();
        }
        stats
    }

    /// Snapshot of the service's own metrics registry (the `service.*`
    /// counters and latency histograms behind [`DiagnosisService::stats`],
    /// each also answering last-10s/last-60s windowed reads).
    /// Process-wide stage metrics live in [`ioobserve::metrics()`]. The
    /// `service.queue_depth` gauge is refreshed at snapshot time.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.shared
            .counters
            .queue_depth
            .set(self.shared.queue.len() as u64);
        self.shared.counters.registry.snapshot()
    }

    /// Count one request-level failure (malformed line, unknown model,
    /// full queue, …) against the windowed `service.errors` counter.
    /// Front ends call this when they render an error reply, so the
    /// errors/s rate and any `errors`-based SLO see protocol rejections
    /// as well as service-side refusals.
    pub fn note_error(&self) {
        self.shared.counters.errors.inc();
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The shared knowledge index (for reuse in sibling services).
    pub fn retriever(&self) -> Arc<Retriever> {
        Arc::clone(&self.shared.retriever)
    }

    /// Stop accepting jobs, finish everything queued, and join the
    /// workers.
    pub fn shutdown(mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for DiagnosisService {
    fn drop(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker_idx: usize) {
    // Every job this worker runs is pinned to a rayon-shim pool of the
    // configured intra-job width, making the daemon's thread budget an
    // explicit `workers × intra_threads` product: width 1 (the default)
    // keeps hot loops sequential inside each job regardless of the global
    // pool or `RAYON_NUM_THREADS`; wider pools split per-fragment
    // diagnosis, retrieval reflection, and merge levels within the job.
    // Diagnosis output is bit-identical at any width.
    let intra_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(shared.intra_threads)
        .build()
        .expect("intra-job thread pool");
    let tracer = ioobserve::tracer();
    while let Some(job) = shared.queue.pop() {
        shared.counters.workers_busy.add(1);
        let queue_wait = job.enqueued.elapsed();
        let started = Instant::now();

        // The root span for this job opens retroactively at the enqueue
        // instant, so its duration is true wall time (queue wait + exec)
        // and `stage.queue_wait` tiles the pre-dequeue part exactly. It
        // stays on this thread's span stack, parenting every stage span
        // the pipeline opens below (with `intra_threads` 1 — the default
        // — all job work runs on this thread).
        let mut job_span = tracer.span_at("job", job.enqueued_ns, 0);
        job_span.set_attr("id", &job.request.id);
        job_span.set_attr("trace_id", &job.trace_id);
        job_span.set_attr("model", &job.request.model);
        job_span.set_attr("worker", worker_idx);
        drop(tracer.span_at("stage.queue_wait", job.enqueued_ns, job_span.id()));

        // Shed before any work: a deadline that expired in the queue
        // means the client has already given up — executing now would
        // burn a worker on an answer nobody reads.
        let result = if job.deadline_at.is_some_and(|d| Instant::now() >= d) {
            JobResult {
                id: job.request.id,
                diagnosis: empty_diagnosis(&job.request.model),
                cached: false,
                worker: worker_idx,
                metrics: JobMetrics {
                    queue_wait,
                    exec: started.elapsed(),
                    ..Default::default()
                },
                trace_id: job.trace_id,
                failure: Some(JobFailure::DeadlineExceededQueued),
            }
        } else {
            // A duplicate may have completed while this job sat in the
            // queue.
            match shared.lookup(&job.key) {
                Some(diagnosis) => JobResult {
                    id: job.request.id,
                    diagnosis,
                    cached: true,
                    worker: worker_idx,
                    metrics: JobMetrics {
                        queue_wait,
                        exec: started.elapsed(),
                        ..Default::default()
                    },
                    trace_id: job.trace_id,
                    failure: None,
                },
                None => {
                    if !shared.rpc_latency.is_zero() {
                        let _rpc_span = tracer.span("stage.rpc_wait");
                        std::thread::sleep(shared.rpc_latency);
                    }
                    execute_fresh(shared, &job, worker_idx, &intra_pool, queue_wait, started)
                }
            }
        };
        if let Some(failure) = &result.failure {
            job_span.set_attr("error", failure.error_kind());
        }
        job_span.set_attr("cached", result.cached);
        // End (and flush) the job's spans before bookkeeping so the
        // recorded wall time covers exactly enqueue → result ready.
        drop(job_span);
        shared.record(&result);
        // The submitter may have given up on the ticket; that is fine.
        let _ = job.reply.send(result);
        shared.counters.workers_busy.sub(1);
    }
    tracer.flush();
}

/// Run one cache-missing job to completion (or failure) on this worker.
///
/// The backbone model carries the service's fault plan, and — whenever a
/// deadline or resilience policy is configured — a [`ResilientLlm`]
/// wrapper that retries, hedges, and enforces the deadline around every
/// LLM call the pipeline issues. Failed jobs return an empty diagnosis
/// and are never cached; the spend they accumulated before failing is
/// still accounted.
fn execute_fresh(
    shared: &Shared,
    job: &QueuedJob,
    worker_idx: usize,
    intra_pool: &rayon::ThreadPool,
    queue_wait: Duration,
    started: Instant,
) -> JobResult {
    // Fresh per-job models: usage accounting stays job-local.
    let mut model = SimLlm::new(&job.request.model);
    if let Some(plan) = &shared.fault_plan {
        model = model.with_fault_plan(plan.clone());
    }
    let (diagnosis, backbone, reflection, failure) =
        if shared.resilience.is_some() || job.deadline_at.is_some() {
            let policy = shared
                .resilience
                .unwrap_or_else(ResiliencePolicy::unbounded);
            let model = ResilientLlm::new(
                model,
                policy,
                job.deadline_at,
                shared.counters.resilience.clone(),
            );
            let agent = IoAgent::with_shared_retriever(
                &model,
                job.request.config.clone(),
                Arc::clone(&shared.retriever),
            );
            let diagnosis = intra_pool.install(|| agent.diagnose(&job.request.trace));
            let reflection = agent.reflection_usage();
            (diagnosis, model.usage(), reflection, model.take_failure())
        } else {
            let agent = IoAgent::with_shared_retriever(
                &model,
                job.request.config.clone(),
                Arc::clone(&shared.retriever),
            );
            let diagnosis = intra_pool.install(|| agent.diagnose(&job.request.trace));
            let reflection = agent.reflection_usage();
            (diagnosis, model.usage(), reflection, None)
        };
    let diagnosis = match failure {
        // A failed job's partial pipeline output is meaningless; drop it.
        Some(_) => empty_diagnosis(&job.request.model),
        None => {
            shared.remember(&job.key, &diagnosis);
            diagnosis
        }
    };
    JobResult {
        id: job.request.id.clone(),
        diagnosis,
        cached: false,
        worker: worker_idx,
        metrics: JobMetrics {
            llm_calls: backbone.calls + reflection.calls,
            input_tokens: backbone.input_tokens + reflection.input_tokens,
            output_tokens: backbone.output_tokens + reflection.output_tokens,
            cost_usd: backbone.cost_usd + reflection.cost_usd,
            queue_wait,
            exec: started.elapsed(),
        },
        trace_id: job.trace_id.clone(),
        failure,
    }
}

/// Placeholder diagnosis carried by failed jobs (the protocol renders
/// the failure, not this).
fn empty_diagnosis(model: &str) -> Diagnosis {
    Diagnosis {
        tool: format!("ioagent-{model}"),
        text: String::new(),
        issues: Vec::new(),
        references: Vec::new(),
    }
}
