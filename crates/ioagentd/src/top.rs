//! Terminal dashboard rendering for `ioagentd top`.
//!
//! The subcommand polls `{"metrics": true}` over TCP, reconstructs the
//! two registry snapshots from the wire format
//! ([`crate::protocol::snapshot_from_metrics_json`]), and renders them
//! with [`render_dashboard`]: windowed rates, queue depth and worker
//! occupancy, windowed latency quantiles for the `service.*` histograms,
//! and per-stage latency bars from the process-global stage histograms.
//!
//! Rendering is a pure function of the snapshots so it is unit-testable
//! without a daemon; empty windows print `-` (never a fake 0), matching
//! the `null` statistics on the wire.

use ioobserve::{fmt_ns, HistogramSnapshot, RegistrySnapshot};
use std::fmt::Write as _;

/// Width of the longest per-stage latency bar.
const BAR_WIDTH: usize = 28;

fn counter(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn gauge(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.gauges
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn counter_window(snap: &RegistrySnapshot, name: &str, idx: usize) -> u64 {
    snap.counter_windows
        .iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, t)| t.get(idx))
        .copied()
        .unwrap_or(0)
}

fn window_label(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if (secs - secs.round()).abs() < 1e-9 {
        format!("last {}s", secs.round() as u64)
    } else {
        format!("last {secs}s")
    }
}

/// `p50/p90/p99` cell for one histogram window, `-` when it is empty.
fn quantile_cell(h: &HistogramSnapshot) -> String {
    if h.count == 0 {
        "-".to_string()
    } else {
        format!(
            "{}/{}/{} (n={})",
            fmt_ns(h.p50),
            fmt_ns(h.p90),
            fmt_ns(h.p99),
            h.count
        )
    }
}

/// Render one refresh of the dashboard from the service and process
/// registry snapshots (as reconstructed from a `{"metrics": true}`
/// reply).
pub fn render_dashboard(service: &RegistrySnapshot, process: &RegistrySnapshot) -> String {
    let mut out = String::new();

    // Header: occupancy and lifetime totals.
    let workers = gauge(service, "service.workers");
    let busy = gauge(service, "service.workers_busy");
    let queue = gauge(service, "service.queue_depth");
    let jobs = counter(service, "service.jobs_completed");
    let hits = counter(service, "service.cache_hits");
    let errors = counter(service, "service.errors");
    let _ = writeln!(
        out,
        "ioagentd top — queue {queue}  workers {busy}/{workers} busy  \
         jobs {jobs} ({hits} cached)  errors {errors}"
    );

    // Resilience row: only once the daemon has ever retried, hedged,
    // shed, or seen an injected fault — a quiet daemon keeps the old
    // two-line header.
    let retries = counter(service, "service.retries");
    let hedges = counter(service, "service.hedges");
    let hedge_wins = counter(service, "service.hedge_wins");
    let shed = counter(service, "service.shed_total");
    let failed = counter(service, "service.jobs_failed");
    let faults = counter(service, "service.faults.timeout")
        + counter(service, "service.faults.rate_limited")
        + counter(service, "service.faults.truncated");
    if retries + hedges + shed + failed + faults > 0 {
        let _ = writeln!(
            out,
            "resilience — retries {retries}  hedges {hedges} ({hedge_wins} won)  \
             faults {faults}  shed {shed}  failed {failed}"
        );
    }

    // Windowed rates.
    if service.window_ns.is_empty() {
        let _ = writeln!(out, "(no windowed metrics offered by this daemon)");
    } else {
        let _ = writeln!(
            out,
            "\n{:<12} {:>10} {:>10} {:>10}",
            "rates", "jobs/s", "errors/s", "cache-hit"
        );
        for (i, &ns) in service.window_ns.iter().enumerate() {
            let secs = ns as f64 / 1e9;
            let jobs_w = counter_window(service, "service.jobs_completed", i);
            let errors_w = counter_window(service, "service.errors", i);
            let hits_w = counter_window(service, "service.cache_hits", i);
            let hit_cell = if jobs_w == 0 {
                "-".to_string()
            } else {
                format!("{:.0}%", 100.0 * hits_w as f64 / jobs_w as f64)
            };
            let _ = writeln!(
                out,
                "{:<12} {:>10.2} {:>10.2} {:>10}",
                window_label(ns),
                jobs_w as f64 / secs,
                errors_w as f64 / secs,
                hit_cell
            );
        }
    }

    // Windowed service latency quantiles, one column per window.
    let svc_rows: Vec<&(String, Vec<HistogramSnapshot>)> = service
        .histogram_windows
        .iter()
        .filter(|(name, _)| name.starts_with("service."))
        .collect();
    if !svc_rows.is_empty() {
        let mut header = format!("\n{:<26}", "latency p50/p90/p99");
        for &ns in &service.window_ns {
            let _ = write!(header, " {:>30}", window_label(ns));
        }
        let _ = writeln!(out, "{header}");
        for (name, wins) in svc_rows {
            let mut row = format!("{:<26}", name.trim_start_matches("service."));
            for w in wins {
                let _ = write!(row, " {:>30}", quantile_cell(w));
            }
            let _ = writeln!(out, "{row}");
        }
    }

    // Per-stage latency bars from the process registry: the last
    // (longest) window's p90, scaled to the slowest stage. Falls back to
    // lifetime quantiles when the process registry is not windowed.
    let stage_p90 = |name: &str| -> Option<(String, u64, u64)> {
        if let Some((_, wins)) = process.histogram_windows.iter().find(|(n, _)| n == name) {
            let w = wins.last()?;
            (w.count > 0).then(|| (name.to_string(), w.p90, w.count))
        } else {
            let (_, h) = process.histograms.iter().find(|(n, _)| n == name)?;
            (h.count > 0).then(|| (name.to_string(), h.p90, h.count))
        }
    };
    let mut stages: Vec<(String, u64, u64)> = process
        .histograms
        .iter()
        .map(|(n, _)| n)
        .chain(process.histogram_windows.iter().map(|(n, _)| n))
        .filter(|n| n.starts_with("stage."))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .filter_map(|n| stage_p90(n))
        .collect();
    stages.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    if !stages.is_empty() {
        let max = stages
            .iter()
            .map(|(_, p90, _)| *p90)
            .max()
            .unwrap_or(1)
            .max(1);
        let _ = writeln!(out, "\nstage p90 (windowed when offered)");
        for (name, p90, count) in &stages {
            let bar = (*p90 as u128 * BAR_WIDTH as u128 / max as u128) as usize;
            let _ = writeln!(
                out,
                "{:<22} {:<BAR_WIDTH$} {:>10} (n={count})",
                name.trim_start_matches("stage.").trim_end_matches("_ns"),
                "#".repeat(bar.max(1)),
                fmt_ns(*p90),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(count: u64, v: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            count,
            sum: v * count,
            min: v,
            max: v,
            p50: v,
            p90: v,
            p99: v,
            p999: v,
        }
    }

    fn service_snap() -> RegistrySnapshot {
        RegistrySnapshot {
            counters: vec![
                ("service.cache_hits".into(), 4),
                ("service.errors".into(), 1),
                ("service.jobs_completed".into(), 16),
            ],
            gauges: vec![
                ("service.queue_depth".into(), 3),
                ("service.workers".into(), 4),
                ("service.workers_busy".into(), 2),
            ],
            histograms: vec![("service.exec_ns".into(), hist(16, 40_000_000))],
            window_ns: vec![10_000_000_000, 60_000_000_000],
            counter_windows: vec![
                ("service.cache_hits".into(), vec![1, 4]),
                ("service.errors".into(), vec![0, 1]),
                ("service.jobs_completed".into(), vec![5, 16]),
            ],
            histogram_windows: vec![(
                "service.exec_ns".into(),
                vec![hist(0, 0), hist(16, 40_000_000)],
            )],
            ..RegistrySnapshot::default()
        }
    }

    fn process_snap() -> RegistrySnapshot {
        RegistrySnapshot {
            histograms: vec![
                ("stage.llm_ns".into(), hist(90, 30_000_000)),
                ("stage.retrieve_ns".into(), hist(90, 3_000_000)),
            ],
            window_ns: vec![10_000_000_000, 60_000_000_000],
            histogram_windows: vec![
                (
                    "stage.llm_ns".into(),
                    vec![hist(10, 30_000_000), hist(90, 30_000_000)],
                ),
                (
                    "stage.retrieve_ns".into(),
                    vec![hist(10, 3_000_000), hist(90, 3_000_000)],
                ),
            ],
            ..RegistrySnapshot::default()
        }
    }

    #[test]
    fn dashboard_shows_occupancy_rates_and_stages() {
        let text = render_dashboard(&service_snap(), &process_snap());
        assert!(text.contains("queue 3"), "{text}");
        assert!(text.contains("workers 2/4 busy"), "{text}");
        assert!(text.contains("last 10s"), "{text}");
        assert!(text.contains("last 60s"), "{text}");
        // 5 jobs / 10s.
        assert!(text.contains("0.50"), "{text}");
        // Stage rows present, slowest bar longest.
        assert!(text.contains("llm"), "{text}");
        assert!(text.contains("retrieve"), "{text}");
        let llm_bar = text
            .lines()
            .find(|l| l.starts_with("llm"))
            .unwrap()
            .matches('#')
            .count();
        let ret_bar = text
            .lines()
            .find(|l| l.starts_with("retrieve"))
            .unwrap()
            .matches('#')
            .count();
        assert!(llm_bar > ret_bar, "llm {llm_bar} vs retrieve {ret_bar}");
    }

    #[test]
    fn resilience_row_appears_only_under_pressure() {
        // A quiet daemon: no resilience row at all.
        let quiet = render_dashboard(&service_snap(), &process_snap());
        assert!(!quiet.contains("resilience"), "{quiet}");
        // Under faults the row summarises retries/hedges/shed/failed.
        let mut snap = service_snap();
        snap.counters.extend([
            ("service.retries".into(), 7),
            ("service.hedges".into(), 4),
            ("service.hedge_wins".into(), 3),
            ("service.shed_total".into(), 2),
            ("service.jobs_failed".into(), 5),
            ("service.faults.timeout".into(), 6),
            ("service.faults.rate_limited".into(), 1),
            ("service.faults.truncated".into(), 1),
        ]);
        let text = render_dashboard(&snap, &process_snap());
        assert!(text.contains("retries 7"), "{text}");
        assert!(text.contains("hedges 4 (3 won)"), "{text}");
        assert!(text.contains("faults 8"), "{text}");
        assert!(text.contains("shed 2"), "{text}");
        assert!(text.contains("failed 5"), "{text}");
    }

    #[test]
    fn empty_windows_render_dash_not_zero() {
        let text = render_dashboard(&service_snap(), &process_snap());
        // exec_ns window 0 (last 10s) is empty → "-" cell, never "0ns".
        let exec_line = text.lines().find(|l| l.starts_with("exec_ns")).unwrap();
        assert!(exec_line.contains('-'), "{exec_line}");
        assert!(!exec_line.contains("0ns"), "{exec_line}");
        // The populated 60s window reports its quantiles.
        assert!(exec_line.contains("40.00ms"), "{exec_line}");
    }

    #[test]
    fn handles_lifetime_only_snapshots() {
        let service = RegistrySnapshot {
            counters: vec![("service.jobs_completed".into(), 2)],
            ..RegistrySnapshot::default()
        };
        let process = RegistrySnapshot {
            histograms: vec![("stage.llm_ns".into(), hist(5, 1_000))],
            ..RegistrySnapshot::default()
        };
        let text = render_dashboard(&service, &process);
        assert!(text.contains("no windowed metrics"), "{text}");
        assert!(text.contains("llm"), "{text}");
    }
}
