//! Least-recently-used result cache.
//!
//! Keys are job fingerprints (trace content hash × model × config); values
//! are completed diagnoses. Capacity 0 disables caching entirely. Eviction
//! scans for the stalest entry — O(capacity), which is irrelevant next to
//! the multi-millisecond diagnoses being cached.

use std::collections::HashMap;
use std::hash::Hash;

/// An LRU map with hit/miss accounting.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V: Clone> {
    capacity: usize,
    tick: u64,
    entries: HashMap<K, (V, u64)>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a key, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((value, last_used)) => {
                *last_used = self.tick;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a key, evicting the least recently used entry at capacity.
    /// No-op when the cache is disabled.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(stalest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&stalest);
            }
        }
        self.entries.insert(key, (value, self.tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh a; b is now stalest
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn accounting_tracks_hits_and_misses() {
        let mut c = LruCache::new(4);
        c.insert("k", 9);
        assert_eq!(c.get(&"k"), Some(9));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(2));
    }

    #[test]
    fn zero_capacity_still_accounts_misses() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert_eq!((c.hits(), c.misses()), (0, 1));
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn capacity_one_keeps_only_the_newest_entry() {
        let mut c = LruCache::new(1);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), Some(1));
        c.insert("b", 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), None, "a must have been evicted");
        assert_eq!(c.get(&"b"), Some(2));
        // Re-inserting the resident key must not evict it.
        c.insert("b", 3);
        assert_eq!(c.get(&"b"), Some(3));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Re-inserting `a` (no intervening get) must refresh its recency,
        // making `b` the eviction victim.
        c.insert("a", 10);
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"c"), Some(3));
    }

    #[test]
    fn eviction_order_tracks_interleaved_hits() {
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        // Recency after this sequence (stalest first): c, a, b.
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"b"), Some(2));
        c.insert("d", 4); // evicts c
        assert_eq!(c.get(&"c"), None);
        // Now stalest first: a, b, d.
        assert_eq!(c.get(&"a"), Some(1));
        c.insert("e", 5); // evicts b
        assert_eq!(c.get(&"b"), None);
        let survivors: Vec<_> = [("a", 1), ("d", 4), ("e", 5)]
            .into_iter()
            .map(|(k, v)| (c.get(&k), v))
            .collect();
        for (got, want) in survivors {
            assert_eq!(got, Some(want));
        }
        assert_eq!(c.len(), 3);
    }
}
