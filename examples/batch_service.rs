//! `ioagentd` quickstart: diagnose a batch of traces concurrently through
//! the long-lived service, then watch the result cache absorb a repeat.
//!
//! ```sh
//! cargo run --release --example batch_service
//! ```
//!
//! The service builds the 66-document knowledge index once, fans the batch
//! out across a worker pool, and returns per-job diagnoses with token/cost
//! accounting. Results are byte-identical to running each trace through
//! `IoAgent` sequentially — the service adds throughput, not noise.

use ioagentd::{DiagnosisService, JobRequest, ServiceConfig};
use tracebench::TraceBench;

fn main() {
    // 1. A labelled workload (in production: darshan-parser text via the
    //    `ioagentd` binary's NDJSON protocol, one trace per line).
    let suite = TraceBench::generate();
    let jobs: Vec<JobRequest> = suite
        .entries
        .iter()
        .take(8)
        .map(|e| JobRequest::new(e.spec.id, e.trace.clone(), "gpt-4o"))
        .collect();

    // 2. Start the service: N workers over one shared knowledge index.
    let config = ServiceConfig::default();
    println!(
        "starting ioagentd: {} workers, queue bound {}, cache {} entries",
        config.workers, config.queue_capacity, config.cache_capacity
    );
    let service = DiagnosisService::start(config);

    // 3. Submit the whole batch; tickets resolve in submission order.
    let start = std::time::Instant::now();
    let results = service.run_batch(jobs.clone()).expect("valid batch");
    println!(
        "\nbatch of {} diagnosed in {:?}\n",
        results.len(),
        start.elapsed()
    );
    for r in &results {
        println!(
            "  {:28} worker {}  {:3} LLM calls  ${:.4}  issues: {:?}",
            r.id,
            r.worker,
            r.metrics.llm_calls,
            r.metrics.cost_usd,
            r.diagnosis
                .issues
                .iter()
                .map(|i| i.key())
                .collect::<Vec<_>>(),
        );
    }

    // 4. Resubmit: every job is answered from the LRU cache, zero LLM calls.
    let start = std::time::Instant::now();
    let repeat = service.run_batch(jobs).expect("valid batch");
    println!(
        "\nrepeat batch in {:?}: {} cache hits, {} LLM calls",
        start.elapsed(),
        repeat.iter().filter(|r| r.cached).count(),
        repeat.iter().map(|r| r.metrics.llm_calls).sum::<usize>(),
    );

    // 5. Aggregate accounting, then drain gracefully.
    let stats = service.stats();
    println!(
        "\nservice totals: {} jobs ({} cached), {} LLM calls, {} input tokens, ${:.4}",
        stats.jobs_completed, stats.cache_hits, stats.llm_calls, stats.input_tokens, stats.cost_usd
    );
    service.shutdown();
}
