//! Continued user interaction (paper §VI-E, Fig. 5).
//!
//! ```sh
//! cargo run --release --example interactive_session
//! ```
//!
//! Reproduces the paper's interaction: an IO500 trace doing 4 MB accesses
//! on the default Lustre layout (stripe count 1, stripe size 1 MB) is
//! diagnosed, then the user asks how to fix the stripe settings and gets a
//! tailored `lfs setstripe` command, then keeps digging.

use ioagent_core::IoAgent;
use simllm::SimLlm;
use tracebench::TraceBench;

fn main() {
    let suite = TraceBench::generate();
    let entry = suite.get("io500_rnd_posix_shared").expect("trace");
    println!(
        "trace: {} — 4 MB accesses on stripe count 1 / stripe size 1 MB\n",
        entry.spec.id
    );

    let model = SimLlm::new("gpt-4o");
    let agent = IoAgent::new(&model);
    let mut session = agent.start_session(&entry.trace);

    println!("=== diagnosis ===\n{}", session.diagnosis.text);

    for question in [
        "How can I fix the suboptimal stripe settings?",
        "Should I also switch to collective MPI-IO?",
        "What about the random write pattern?",
    ] {
        println!("user> {question}\n");
        let answer = session.ask(question);
        println!("ioagent> {answer}");
    }
    println!("({} turns in session)", session.turns.len());
}
