//! The paper's motivating example (§III, Fig. 1): diagnosing an AMReX run.
//!
//! ```sh
//! cargo run --release --example amrex_diagnosis
//! ```
//!
//! Contrasts plain-LLM diagnosis (the ION strategy: stuff the whole parsed
//! trace into one prompt) against IOAgent on the same AMReX-style trace:
//! the plain model misses the MPI-IO underuse buried mid-trace and repeats
//! the stripe-size misconception; IOAgent finds the planted issues and
//! cites its sources.

use baselines::Ion;
use ioagent_core::IoAgent;
use simllm::SimLlm;
use tracebench::TraceBench;

fn main() {
    let suite = TraceBench::generate();
    let amrex = suite.get("ra_amrex").expect("AMReX trace");
    println!(
        "AMReX: {:.0} s, {} processes, {} files on Lustre (stripe count 1)\n",
        amrex.trace.header.run_time,
        amrex.trace.header.nprocs,
        amrex.trace.files().len(),
    );
    println!("expert labels: {:?}\n", amrex.labels());

    let model = SimLlm::new("gpt-4o");

    println!("--- plain gpt-4o, whole trace in one prompt (ION strategy) ---");
    let ion = Ion::new(&model);
    let plain = ion.diagnose(&amrex.trace);
    println!("{}", plain.text);
    let found = plain.issue_set();
    let missed: Vec<_> = amrex
        .labels()
        .into_iter()
        .filter(|l| !found.contains(l))
        .collect();
    println!("missed: {missed:?}");
    if plain.text.contains("optimal for minimizing") {
        println!("note: repeated the '1 MB stripe is optimal' misconception");
    }

    println!("\n--- IOAgent (same backbone model) ---");
    let agent = IoAgent::new(&model);
    let d = agent.diagnose(&amrex.trace);
    println!("{}", d.text);
    let found = d.issue_set();
    let missed: Vec<_> = amrex
        .labels()
        .into_iter()
        .filter(|l| !found.contains(l))
        .collect();
    println!("missed: {missed:?}");
    println!("references cited: {}", d.references.len());
}
