//! Side-by-side comparison of all four diagnosis tools on one trace.
//!
//! ```sh
//! cargo run --release --example compare_tools [trace_id]
//! ```
//!
//! Defaults to `ra_hacc_io` (shared-file small unaligned independent I/O —
//! a seven-label trace). Pass any TraceBench id to compare on a different
//! workload; run `table3_tracebench` for the inventory.

use baselines::{Drishti, Ion};
use ioagent_core::IoAgent;
use simllm::SimLlm;
use tracebench::TraceBench;

fn main() {
    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ra_hacc_io".to_string());
    let suite = TraceBench::generate();
    let Some(entry) = suite.get(&id) else {
        eprintln!("unknown trace id {id:?}; available ids:");
        for e in &suite.entries {
            eprintln!("  {}", e.spec.id);
        }
        std::process::exit(1);
    };
    println!("trace: {} — {}", entry.spec.id, entry.spec.description);
    println!("ground truth: {:?}\n", entry.labels());

    let gt = entry.labels();
    let score = |d: &simllm::Diagnosis| {
        let found = d.issue_set();
        let hits = gt.iter().filter(|l| found.contains(l)).count();
        let fps = found.len().saturating_sub(hits);
        (hits, gt.len(), fps)
    };

    let drishti = Drishti.diagnose(&entry.trace);
    let ion_model = SimLlm::new("gpt-4o");
    let ion = Ion::new(&ion_model).diagnose(&entry.trace);
    let gpt4o = SimLlm::new("gpt-4o");
    let agent = IoAgent::new(&gpt4o).diagnose(&entry.trace);
    let llama = SimLlm::new("llama-3.1-70b");
    let agent_llama = IoAgent::new(&llama).diagnose(&entry.trace);

    for d in [&drishti, &ion, &agent, &agent_llama] {
        let (hits, total, fps) = score(d);
        println!("================ {} ================", d.tool);
        println!("[{hits}/{total} ground-truth issues found, {fps} false positives]\n");
        println!("{}", d.text);
    }
}
