//! Quickstart: diagnose a Darshan trace with IOAgent in ~20 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline on one TraceBench trace: parse-format round
//! trip, pre-processing into JSON summary fragments, the JSON→NL
//! transformation (paper Fig. 3), and the final merged diagnosis with
//! references.

use ioagent_core::IoAgent;
use simllm::SimLlm;
use tracebench::TraceBench;

fn main() {
    // 1. Get a Darshan trace. TraceBench generates labelled ones; in real
    //    use you would `darshan::parse::parse_text(&darshan_parser_output)`.
    let suite = TraceBench::generate();
    let entry = suite.get("sb01_small_io").expect("trace");
    println!(
        "trace: {} ({} ranks, {:.0}s)",
        entry.spec.id, entry.spec.nprocs, entry.spec.run_time
    );
    println!("ground-truth issues: {:?}\n", entry.labels());

    // The text format round-trips through the darshan crate.
    let text = darshan::write::write_text(&entry.trace);
    let trace = darshan::parse::parse_text(&text).expect("parse darshan text");

    // 2. Peek at the pre-processor output (module-based summary fragments).
    let fragments = preprocessor::extract_fragments(&trace);
    println!(
        "pre-processor produced {} summary fragments:",
        fragments.len()
    );
    for f in &fragments {
        println!("  - {}", f.title);
    }

    // 3. The Fig. 3 step: one fragment's JSON and its natural-language
    //    transformation (the RAG query).
    let model = SimLlm::new("gpt-4o");
    let io_size = fragments
        .iter()
        .find(|f| f.title == "POSIX I/O Size")
        .unwrap();
    println!(
        "\nJSON fragment ({}):\n{}",
        io_size.title,
        io_size.json_text()
    );
    let nl = ioagent_core::transform::to_natural_language(&model, io_size);
    println!("\nnatural-language form:\n{nl}\n");

    // 4. Full diagnosis.
    let agent = IoAgent::new(&model);
    let diagnosis = agent.diagnose(&trace);
    println!("{}", diagnosis.text);
    println!("identified issues: {:?}", diagnosis.issues);
    println!("llm usage: {:?}", model.usage());
}
