//! DXT-Explorer-style fine-grained analysis (the paper's future-work
//! direction, §II-A): per-operation traces reveal what aggregate counters
//! only hint at — exact strides, burst windows, and rank concurrency.
//!
//! ```sh
//! cargo run --release --example dxt_explorer [trace_id]
//! ```

use darshan::dxt::{file_stats, write_dxt_text};
use tracebench::{synthesize_dxt, TraceBench};

fn main() {
    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ra_hacc_io".to_string());
    let suite = TraceBench::generate();
    let Some(entry) = suite.get(&id) else {
        eprintln!("unknown trace id {id:?}");
        std::process::exit(1);
    };
    println!(
        "DXT analysis of {} — {}\n",
        entry.spec.id, entry.spec.description
    );

    let dxt = synthesize_dxt(&entry.spec);
    println!("{} events across {} files\n", dxt.len(), dxt.files.len());

    for file in dxt.files.values().take(4) {
        let stats = file_stats(file);
        println!("file {}:", file.file);
        println!("  events               {}", stats.events);
        println!("  bytes                {}", stats.bytes);
        println!("  consecutive fraction {:.2}", stats.consecutive_fraction);
        match stats.dominant_stride {
            Some(s) => println!("  dominant stride      {s} bytes"),
            None => println!("  dominant stride      none (scattered offsets)"),
        }
        println!("  mean op duration     {:.3} ms", stats.mean_duration * 1e3);
        println!("  peak concurrency     {} ranks", stats.peak_concurrency);
        println!("  busiest window start {:.3} s\n", stats.burst_start);
    }

    // First lines of the darshan-dxt-parser-compatible dump.
    let text = write_dxt_text(&dxt);
    println!("dxt text preview:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", text.lines().count());
}
